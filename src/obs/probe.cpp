#include "src/obs/probe.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/snn/neuron.h"

namespace ullsnn::obs {

SnnRuntimeProbe::SnnRuntimeProbe(snn::SnnNetwork& net)
    : SnnRuntimeProbe(net, Config{}) {}

SnnRuntimeProbe::SnnRuntimeProbe(snn::SnnNetwork& net, Config config)
    : net_(&net), config_(config) {
  layers_.resize(static_cast<std::size_t>(net.size()));
  for (std::int64_t i = 0; i < net.size(); ++i) {
    LayerState& state = layers_[static_cast<std::size_t>(i)];
    state.probed = net.layer(i).neuron_or_null() != nullptr;
    state.name = net.layer(i).name() + "#" + std::to_string(i);
  }
  net.set_observer(this);
}

SnnRuntimeProbe::~SnnRuntimeProbe() { detach(); }

void SnnRuntimeProbe::detach() {
  if (net_ != nullptr && net_->observer() == this) net_->set_observer(nullptr);
  net_ = nullptr;
}

void SnnRuntimeProbe::set_layer_mu(std::vector<float> mu_by_layer) {
  mu_by_layer_ = std::move(mu_by_layer);
}

void SnnRuntimeProbe::on_sequence_begin(snn::SnnNetwork& net, const Shape& input_shape,
                                        std::int64_t time_steps, bool train) {
  (void)train;
  current_batch_ = input_shape.empty() ? 0 : input_shape[0];
  current_time_steps_ = time_steps;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    LayerState& state = layers_[i];
    if (!state.probed) continue;
    // Re-baseline against the cumulative counter so an external reset_stats()
    // (e.g. energy::measure_activity) between sequences cannot skew deltas.
    state.prev_spikes = net.layer(static_cast<std::int64_t>(i)).spikes_emitted();
    if (config_.track_delta) state.out_sum.clear();
  }
}

void SnnRuntimeProbe::on_layer_step(snn::SnnNetwork& net, std::int64_t layer_index,
                                    const Tensor& output, std::int64_t t) {
  LayerState& state = layers_[static_cast<std::size_t>(layer_index)];
  if (!state.probed) return;
  const snn::SpikingLayer& layer = net.layer(layer_index);
  const std::int64_t cumulative = layer.spikes_emitted();
  const std::int64_t step_spikes = cumulative - state.prev_spikes;
  state.prev_spikes = cumulative;
  state.spikes_total += step_spikes;
  state.neurons = layer.neurons();

  if (config_.track_delta) {
    if (state.out_sum.empty()) {
      state.out_sum.assign(static_cast<std::size_t>(output.numel()), 0.0F);
    }
    for (std::int64_t i = 0; i < output.numel(); ++i) {
      state.out_sum[static_cast<std::size_t>(i)] += output[i];
    }
  }

  if (!config_.keep_step_stats) return;
  LayerStepStats stats;
  stats.sequence = sequences_;
  stats.layer = layer_index;
  stats.name = state.name;
  stats.step = t;
  stats.batch = current_batch_;
  stats.neurons = state.neurons;
  stats.spikes = step_spikes;
  const double population =
      static_cast<double>(current_batch_) * static_cast<double>(state.neurons);
  stats.spike_rate = population > 0.0 ? static_cast<double>(step_spikes) / population : 0.0;

  if (config_.membrane_stats) {
    // neuron_or_null() is non-const only because fault injection mutates
    // membranes through it; the probe reads only.
    snn::IfNeuron* neuron =
        const_cast<snn::SpikingLayer&>(layer).neuron_or_null();
    const Tensor& u = neuron->membrane();
    const float v_th = neuron->threshold();
    const std::int64_t n = u.numel();
    if (n > 0 && v_th > 0.0F) {
      double sum = 0.0;
      double sq_sum = 0.0;
      std::int64_t saturated = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        const double v = u[i];
        sum += v;
        sq_sum += v * v;
        if (v >= v_th) ++saturated;
        const double ratio = v / v_th;
        std::size_t bucket = kMembraneBucketEdges.size();
        for (std::size_t b = 0; b < kMembraneBucketEdges.size(); ++b) {
          if (ratio <= kMembraneBucketEdges[b]) {
            bucket = b;
            break;
          }
        }
        ++stats.membrane_histogram[bucket];
      }
      const double mean = sum / static_cast<double>(n);
      stats.membrane_mean = mean;
      stats.membrane_var = std::max(sq_sum / static_cast<double>(n) - mean * mean, 0.0);
      stats.saturation_fraction = static_cast<double>(saturated) / static_cast<double>(n);
    }
  }
  step_stats_.push_back(std::move(stats));
}

void SnnRuntimeProbe::on_sequence_end(snn::SnnNetwork& net) {
  if (config_.track_delta) {
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      LayerState& state = layers_[i];
      if (!state.probed || state.out_sum.empty()) continue;
      snn::IfNeuron* neuron = net.layer(static_cast<std::int64_t>(i)).neuron_or_null();
      if (neuron == nullptr) continue;
      // The input-reconstruction identity needs pure IF dynamics.
      if (!snn::delta_identity_valid(neuron->leak(), neuron->reset_mode())) {
        state.delta_valid = false;
        continue;
      }
      const double v_th = neuron->threshold();
      const double amplitude = static_cast<double>(neuron->beta()) * v_th;
      if (v_th <= 0.0 || amplitude <= 0.0) continue;
      const double init_charge =
          static_cast<double>(neuron->initial_membrane_fraction()) * v_th;
      const double t_steps = static_cast<double>(current_time_steps_);
      double mu = v_th;
      if (i < mu_by_layer_.size() && mu_by_layer_[i] > 0.0F) mu = mu_by_layer_[i];
      const Tensor& u = neuron->membrane();
      if (u.numel() != static_cast<std::int64_t>(state.out_sum.size())) continue;
      double gap_sum = 0.0;
      for (std::int64_t j = 0; j < u.numel(); ++j) {
        const double out_sum = state.out_sum[static_cast<std::size_t>(j)];
        const double spike_count = out_sum / amplitude;
        const double in_sum = u[j] + v_th * spike_count - init_charge;
        const double avg_in = in_sum / t_steps;
        const double avg_out = out_sum / t_steps;
        gap_sum += std::clamp(avg_in, 0.0, mu) - avg_out;
      }
      state.delta_sum += gap_sum;
      state.delta_samples += u.numel();
    }
  }
  ++sequences_;
  samples_ += current_batch_;
}

std::vector<LayerSummary> SnnRuntimeProbe::summaries() const {
  std::vector<LayerSummary> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerState& state = layers_[i];
    if (!state.probed) continue;
    LayerSummary s;
    s.layer = static_cast<std::int64_t>(i);
    s.name = state.name;
    s.neurons = state.neurons;
    s.spikes_total = state.spikes_total;
    s.samples = samples_;
    const double population = static_cast<double>(samples_) * static_cast<double>(state.neurons);
    s.spikes_per_neuron =
        population > 0.0 ? static_cast<double>(state.spikes_total) / population : 0.0;
    s.delta_gap = (state.delta_valid && state.delta_samples > 0)
                      ? state.delta_sum / static_cast<double>(state.delta_samples)
                      : std::numeric_limits<double>::quiet_NaN();
    out.push_back(std::move(s));
  }
  return out;
}

std::int64_t SnnRuntimeProbe::total_spikes() const {
  std::int64_t total = 0;
  for (const LayerState& state : layers_) total += state.spikes_total;
  return total;
}

void SnnRuntimeProbe::reset() {
  for (LayerState& state : layers_) {
    state.spikes_total = 0;
    state.prev_spikes = 0;
    state.out_sum.clear();
    state.delta_sum = 0.0;
    state.delta_samples = 0;
    state.delta_valid = true;
  }
  step_stats_.clear();
  sequences_ = 0;
  samples_ = 0;
}

void SnnRuntimeProbe::emit_step_records(TelemetrySink& sink) const {
  for (const LayerStepStats& s : step_stats_) {
    TelemetryRecord r;
    r.kind = "snn.layer_step";
    r.add("sequence", s.sequence)
        .add("layer", s.layer)
        .add("name", s.name)
        .add("step", s.step)
        .add("batch", s.batch)
        .add("neurons", s.neurons)
        .add("spikes", s.spikes)
        .add("spike_rate", s.spike_rate)
        .add("membrane_mean", s.membrane_mean)
        .add("membrane_var", s.membrane_var)
        .add("saturation_fraction", s.saturation_fraction);
    for (std::size_t b = 0; b < s.membrane_histogram.size(); ++b) {
      r.add("mem_bucket" + std::to_string(b), s.membrane_histogram[b]);
    }
    sink.emit(r);
  }
}

void SnnRuntimeProbe::emit_summary_records(TelemetrySink& sink) const {
  for (const LayerSummary& s : summaries()) {
    TelemetryRecord r;
    r.kind = "snn.layer_activity";
    r.add("layer", s.layer)
        .add("name", s.name)
        .add("neurons", s.neurons)
        .add("samples", s.samples)
        .add("spikes_total", s.spikes_total)
        .add("spikes_per_neuron", s.spikes_per_neuron)
        .add("delta_gap", s.delta_gap);
    sink.emit(r);
  }
}

}  // namespace ullsnn::obs
