// Minimal embedded HTTP/1.1 endpoint for live operational telemetry.
//
// Deliberately tiny: blocking POSIX sockets, one accept thread, one
// connection served at a time, exact-match GET routes, Connection: close.
// That is exactly enough for a Prometheus scraper, a load balancer health
// check, and a human with curl — and nothing more. No dependencies, no TLS,
// no keep-alive, no request bodies. Bind it to loopback (the default) and
// put a real proxy in front if the network is hostile.
//
// Routes are registered before start(); each handler runs on the accept
// thread, so keep them snapshot-cheap (the /metrics render is a string
// build over an already-consistent snapshot). A handler that throws yields
// a 500 with the exception text rather than killing the thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace ullsnn::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

/// Exact-match route handler; receives the request path (query string, if
/// any, stripped and passed separately).
using HttpHandler =
    std::function<HttpResponse(const std::string& path, const std::string& query)>;

class HttpEndpoint {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    /// 0 binds an ephemeral port; read the actual one from port().
    int port = 0;
    int backlog = 16;
    /// Per-connection read/write timeout (a stuck scraper cannot wedge the
    /// accept thread forever).
    std::chrono::milliseconds io_timeout{2000};
  };

  explicit HttpEndpoint(Config config);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Register an exact-match GET route ("/metrics"). Must precede start().
  void route(const std::string& path, HttpHandler handler);

  /// Bind + listen + spawn the accept thread. Throws std::runtime_error on
  /// bind/listen failure (port taken, bad address). Idempotent.
  void start();
  /// Close the listener and join the accept thread. Idempotent; also run by
  /// the destructor.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (resolves an ephemeral request); 0 before start().
  int port() const { return port_.load(std::memory_order_acquire); }
  const std::string& bind_address() const { return config_.bind_address; }

  std::int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Config config_;
  /// Written only before start() (enforced by route()); read-only while the
  /// accept thread runs, so no lock is needed.
  std::map<std::string, HttpHandler> routes_;
  std::thread accept_thread_;
  // running_: release store in start() publishes the bound socket + routes
  // to acquire readers; stopping_ acquire/release orders the shutdown
  // handshake (flag, then close the fd) against the accept loop's checks.
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // listen_fd_/port_: release store after the socket is fully set up,
  // acquire load wherever the fd/port is consumed (stop(), scrapers).
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{0};
  // relaxed: independent tally read in isolation.
  std::atomic<std::int64_t> requests_served_{0};
};

}  // namespace ullsnn::obs
