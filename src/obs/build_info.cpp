#include "src/obs/build_info.h"

#include "src/obs/telemetry.h"

#ifndef ULLSNN_GIT_HASH
#define ULLSNN_GIT_HASH "unknown"
#endif
#ifndef ULLSNN_BUILD_TYPE_STR
#define ULLSNN_BUILD_TYPE_STR "unknown"
#endif
#ifndef ULLSNN_CXX_FLAGS_STR
#define ULLSNN_CXX_FLAGS_STR ""
#endif

namespace ullsnn::obs {

namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.compiler = detect_compiler();
    b.build_type = ULLSNN_BUILD_TYPE_STR;
    b.flags = ULLSNN_CXX_FLAGS_STR;
    b.git_hash = ULLSNN_GIT_HASH;
    b.telemetry = ULLSNN_TELEMETRY != 0;
    return b;
  }();
  return info;
}

std::string build_info_comment() {
  const BuildInfo& b = build_info();
  std::string s;
  s += "ullsnn build info\n";
  s += "compiler: " + b.compiler + '\n';
  s += "build_type: " + b.build_type + '\n';
  s += "flags: " + b.flags + '\n';
  s += "git: " + b.git_hash + '\n';
  s += std::string("telemetry: ") + (b.telemetry ? "on" : "off");
  return s;
}

}  // namespace ullsnn::obs
