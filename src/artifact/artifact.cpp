#include "src/artifact/artifact.h"

#include <cstring>
#include <typeinfo>

#include "src/obs/log.h"
#include "src/tensor/random.h"
#include "src/util/serialize.h"

namespace ullsnn::artifact {

const char* to_string(SectionKind kind) {
  switch (kind) {
    case SectionKind::kArch: return "arch";
    case SectionKind::kTensorIndex: return "tensor-index";
    case SectionKind::kWeights: return "weights";
    case SectionKind::kProbe: return "probe";
    case SectionKind::kQuantWeights: return "quant-weights";
  }
  return "unknown";
}

const char* to_string(ArtifactErrorCode code) {
  switch (code) {
    case ArtifactErrorCode::kIo: return "io";
    case ArtifactErrorCode::kTruncated: return "truncated";
    case ArtifactErrorCode::kBadMagic: return "bad-magic";
    case ArtifactErrorCode::kBadVersion: return "bad-version";
    case ArtifactErrorCode::kHeaderCorrupt: return "header-corrupt";
    case ArtifactErrorCode::kSectionCorrupt: return "section-corrupt";
    case ArtifactErrorCode::kFooterCorrupt: return "footer-corrupt";
    case ArtifactErrorCode::kMalformed: return "malformed";
    case ArtifactErrorCode::kArchMismatch: return "arch-mismatch";
  }
  return "unknown";
}

namespace {

[[noreturn]] void fail(ArtifactErrorCode code, const std::string& path,
                       const std::string& why) {
  throw ArtifactError(code, "artifact: " + path + ": [" +
                                std::string(to_string(code)) + "] " + why);
}

// ---------------------------------------------------------------------------
// Byte-stream helpers. Everything on disk is little-endian POD appended in a
// fixed order; the reader is a bounds-checked cursor that throws kMalformed
// (or kTruncated via the caller) on the first missing byte.
// ---------------------------------------------------------------------------

struct ByteWriter {
  std::vector<char> bytes;

  template <typename T>
  void pod(const T& v) {
    const char* p = reinterpret_cast<const char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
  }
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    bytes.insert(bytes.end(), c, c + n);
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  /// Pad with zeros until size() is a multiple of `a`.
  void align(std::uint64_t a) {
    while (bytes.size() % a != 0) bytes.push_back(0);
  }
  std::uint64_t size() const { return bytes.size(); }
};

class Reader {
 public:
  Reader(const unsigned char* data, std::uint64_t size, const std::string& path,
         ArtifactErrorCode overrun_code)
      : data_(data), size_(size), path_(path), overrun_(overrun_code) {}

  template <typename T>
  T pod() {
    T v{};
    raw(&v, sizeof v);
    return v;
  }
  void raw(void* dst, std::uint64_t n) {
    if (n > remaining()) fail(overrun_, path_, "descriptor runs past its section");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }
  std::string str(std::uint32_t max_len) {
    const auto len = pod<std::uint32_t>();
    if (len > max_len) fail(overrun_, path_, "string length exceeds bound");
    std::string s(len, '\0');
    raw(s.data(), len);
    return s;
  }
  std::uint64_t remaining() const { return size_ - pos_; }
  std::uint64_t pos() const { return pos_; }

 private:
  const unsigned char* data_;
  std::uint64_t size_;
  std::uint64_t pos_ = 0;
  std::string path_;
  ArtifactErrorCode overrun_;
};

// ---------------------------------------------------------------------------
// Arch / tensor-table / probe (de)serialization
// ---------------------------------------------------------------------------

// v1: no precision field (parses as fp32). v2: appends `precision` (u32)
// after encoder_seed. The reader accepts both, so pre-int8 artifacts keep
// loading; the writer always emits v2.
constexpr std::uint32_t kArchBlobVersion = 2;

void write_conv_spec(ByteWriter& w, const Conv2dSpec& s) {
  w.pod(s.in_channels);
  w.pod(s.out_channels);
  w.pod(s.kernel);
  w.pod(s.stride);
  w.pod(s.pad);
}

Conv2dSpec read_conv_spec(Reader& r) {
  Conv2dSpec s;
  s.in_channels = r.pod<std::int64_t>();
  s.out_channels = r.pod<std::int64_t>();
  s.kernel = r.pod<std::int64_t>();
  s.stride = r.pod<std::int64_t>();
  s.pad = r.pod<std::int64_t>();
  return s;
}

void write_neuron(ByteWriter& w, const NeuronDesc& n) {
  w.pod(n.v_threshold);
  w.pod(n.leak);
  w.pod(n.beta);
  w.pod(n.initial_membrane_fraction);
  w.pod(n.reset);
  w.pod(n.train_threshold);
  w.pod(n.train_leak);
}

NeuronDesc read_neuron(Reader& r) {
  NeuronDesc n;
  n.v_threshold = r.pod<float>();
  n.leak = r.pod<float>();
  n.beta = r.pod<float>();
  n.initial_membrane_fraction = r.pod<float>();
  n.reset = r.pod<std::uint32_t>();
  n.train_threshold = r.pod<std::uint8_t>();
  n.train_leak = r.pod<std::uint8_t>();
  return n;
}

std::vector<char> write_arch_blob(const ArchDescriptor& arch) {
  ByteWriter w;
  w.pod(kArchBlobVersion);
  w.pod(arch.time_steps);
  w.pod(arch.encoding);
  w.pod(arch.encoder_seed);
  w.pod(arch.precision);
  w.pod(static_cast<std::uint32_t>(arch.layers.size()));
  for (const LayerDesc& l : arch.layers) {
    w.pod(static_cast<std::uint32_t>(l.kind));
    switch (l.kind) {
      case LayerKind::kConv2d:
        write_conv_spec(w, l.conv);
        write_neuron(w, l.neuron);
        w.pod(l.weight);
        break;
      case LayerKind::kLinear:
        w.pod(l.with_neuron);
        write_neuron(w, l.neuron);
        w.pod(l.weight);
        break;
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool:
        w.pod(l.pool.kernel);
        w.pod(l.pool.stride);
        break;
      case LayerKind::kDropout:
        w.pod(l.drop_prob);
        break;
      case LayerKind::kFlatten:
        break;
      case LayerKind::kResidual:
        write_conv_spec(w, l.conv);
        write_neuron(w, l.neuron);
        w.pod(l.weight);
        write_conv_spec(w, l.conv2);
        write_neuron(w, l.neuron2);
        w.pod(l.weight2);
        w.pod(l.has_projection);
        if (l.has_projection != 0) {
          write_conv_spec(w, l.projection);
          w.pod(l.weight_projection);
        }
        break;
    }
  }
  return std::move(w.bytes);
}

ArchDescriptor parse_arch_blob(Reader& r, const std::string& path) {
  ArchDescriptor arch;
  const auto version = r.pod<std::uint32_t>();
  if (version == 0 || version > kArchBlobVersion) {
    fail(ArtifactErrorCode::kMalformed, path,
         "unsupported arch descriptor version " + std::to_string(version));
  }
  arch.time_steps = r.pod<std::int64_t>();
  if (arch.time_steps <= 0 || arch.time_steps > 1024) {
    fail(ArtifactErrorCode::kMalformed, path, "time_steps out of range");
  }
  arch.encoding = r.pod<std::uint32_t>();
  if (arch.encoding > static_cast<std::uint32_t>(snn::Encoding::kPoisson)) {
    fail(ArtifactErrorCode::kMalformed, path, "unknown encoding");
  }
  arch.encoder_seed = r.pod<std::uint64_t>();
  arch.precision = version >= 2 ? r.pod<std::uint32_t>() : 0;
  if (arch.precision > static_cast<std::uint32_t>(Precision::kInt8)) {
    fail(ArtifactErrorCode::kMalformed, path, "unknown precision");
  }
  const auto count = r.pod<std::uint32_t>();
  if (count == 0 || count > kMaxLayers) {
    fail(ArtifactErrorCode::kMalformed, path, "layer count out of range");
  }
  arch.layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LayerDesc l;
    const auto kind = r.pod<std::uint32_t>();
    l.kind = static_cast<LayerKind>(kind);
    switch (l.kind) {
      case LayerKind::kConv2d:
        l.conv = read_conv_spec(r);
        l.neuron = read_neuron(r);
        l.weight = r.pod<std::int32_t>();
        break;
      case LayerKind::kLinear:
        l.with_neuron = r.pod<std::uint8_t>();
        l.neuron = read_neuron(r);
        l.weight = r.pod<std::int32_t>();
        break;
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool:
        l.pool.kernel = r.pod<std::int64_t>();
        l.pool.stride = r.pod<std::int64_t>();
        break;
      case LayerKind::kDropout:
        l.drop_prob = r.pod<float>();
        break;
      case LayerKind::kFlatten:
        break;
      case LayerKind::kResidual:
        l.conv = read_conv_spec(r);
        l.neuron = read_neuron(r);
        l.weight = r.pod<std::int32_t>();
        l.conv2 = read_conv_spec(r);
        l.neuron2 = read_neuron(r);
        l.weight2 = r.pod<std::int32_t>();
        l.has_projection = r.pod<std::uint8_t>();
        if (l.has_projection != 0) {
          l.projection = read_conv_spec(r);
          l.weight_projection = r.pod<std::int32_t>();
        }
        break;
      default:
        fail(ArtifactErrorCode::kMalformed, path,
             "unknown layer kind " + std::to_string(kind));
    }
    arch.layers.push_back(l);
  }
  if (r.remaining() != 0) {
    fail(ArtifactErrorCode::kMalformed, path, "trailing bytes in arch section");
  }
  return arch;
}

snn::IfConfig to_if_config(const NeuronDesc& n, const std::string& path) {
  if (n.reset > static_cast<std::uint32_t>(snn::ResetMode::kZero)) {
    fail(ArtifactErrorCode::kMalformed, path, "unknown neuron reset mode");
  }
  snn::IfConfig c;
  c.v_threshold = n.v_threshold;
  c.leak = n.leak;
  c.beta = n.beta;
  c.initial_membrane_fraction = n.initial_membrane_fraction;
  c.reset = static_cast<snn::ResetMode>(n.reset);
  c.train_threshold = n.train_threshold != 0;
  c.train_leak = n.train_leak != 0;
  return c;
}

NeuronDesc describe_neuron(const snn::IfNeuron& neuron) {
  const snn::IfConfig c = neuron.config();
  NeuronDesc n;
  n.v_threshold = c.v_threshold;
  n.leak = c.leak;
  n.beta = c.beta;
  n.initial_membrane_fraction = c.initial_membrane_fraction;
  n.reset = static_cast<std::uint32_t>(c.reset);
  n.train_threshold = c.train_threshold ? 1 : 0;
  n.train_leak = c.train_leak ? 1 : 0;
  return n;
}

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Network walking (pack side)
// ---------------------------------------------------------------------------

struct DescribedNetwork {
  ArchDescriptor arch;
  std::vector<TensorEntry> tensors;           // offsets filled during layout
  std::vector<const Tensor*> tensor_sources;  // parallel to `tensors`
};

std::int32_t add_tensor(DescribedNetwork& d, std::string name, const Tensor& t) {
  const auto index = static_cast<std::int32_t>(d.tensors.size());
  TensorEntry e;
  e.name = std::move(name);
  e.shape = t.shape();
  d.tensors.push_back(std::move(e));
  d.tensor_sources.push_back(&t);
  return index;
}

DescribedNetwork describe_network(snn::SnnNetwork& net) {
  DescribedNetwork d;
  d.arch.time_steps = net.time_steps();
  d.arch.encoding = static_cast<std::uint32_t>(net.encoding());
  d.arch.encoder_seed = net.encoder_seed();
  for (std::int64_t i = 0; i < net.size(); ++i) {
    snn::SpikingLayer& layer = net.layer(i);
    std::string prefix = "l";
    prefix += std::to_string(i);
    LayerDesc l;
    if (auto* conv = dynamic_cast<snn::SpikingConv2d*>(&layer)) {
      l.kind = LayerKind::kConv2d;
      l.conv = conv->synapse().spec();
      l.neuron = describe_neuron(*conv->neuron_or_null());
      l.weight = add_tensor(d, prefix + ".w", conv->synapse().weight().value);
    } else if (auto* linear = dynamic_cast<snn::SpikingLinear*>(&layer)) {
      l.kind = LayerKind::kLinear;
      l.with_neuron = linear->has_neuron() ? 1 : 0;
      if (linear->has_neuron()) l.neuron = describe_neuron(*linear->neuron_or_null());
      l.weight = add_tensor(d, prefix + ".w", linear->synapse().weight().value);
    } else if (auto* pool = dynamic_cast<snn::SpikingMaxPool*>(&layer)) {
      l.kind = LayerKind::kMaxPool;
      l.pool = pool->spec();
    } else if (auto* apool = dynamic_cast<snn::SpikingAvgPool*>(&layer)) {
      l.kind = LayerKind::kAvgPool;
      l.pool = apool->spec();
    } else if (auto* dropout = dynamic_cast<snn::SpikingDropout*>(&layer)) {
      l.kind = LayerKind::kDropout;
      l.drop_prob = dropout->drop_prob();
    } else if (dynamic_cast<snn::SpikingFlatten*>(&layer) != nullptr) {
      l.kind = LayerKind::kFlatten;
    } else if (auto* res = dynamic_cast<snn::SpikingResidualBlock*>(&layer)) {
      l.kind = LayerKind::kResidual;
      l.conv = res->conv1_synapse().spec();
      l.neuron = describe_neuron(res->neuron1());
      l.weight = add_tensor(d, prefix + ".conv1.w", res->conv1_synapse().weight().value);
      l.conv2 = res->conv2_synapse().spec();
      l.neuron2 = describe_neuron(res->neuron2());
      l.weight2 = add_tensor(d, prefix + ".conv2.w", res->conv2_synapse().weight().value);
      if (snn::SynapticConv* proj = res->projection_synapse_or_null()) {
        l.has_projection = 1;
        l.projection = proj->spec();
        l.weight_projection = add_tensor(d, prefix + ".proj.w", proj->weight().value);
      }
    } else {
      const std::string kind_name = layer.name();
      throw std::invalid_argument("pack_network: unsupported layer type " +
                                  kind_name);
    }
    d.arch.layers.push_back(l);
  }
  return d;
}

}  // namespace

std::uint64_t arch_fingerprint(const ArchDescriptor& arch,
                               const std::vector<TensorEntry>& tensors) {
  // Structural tokens only: kinds + geometry + weight shapes. Threshold
  // values, T, seeds, and encodings are versioned payload, not topology.
  ByteWriter w;
  for (const LayerDesc& l : arch.layers) {
    w.pod(static_cast<std::uint32_t>(l.kind));
    write_conv_spec(w, l.conv);
    write_conv_spec(w, l.conv2);
    w.pod(l.pool.kernel);
    w.pod(l.pool.stride);
    w.pod(l.with_neuron);
    w.pod(l.has_projection);
    if (l.has_projection != 0) write_conv_spec(w, l.projection);
  }
  for (const TensorEntry& t : tensors) {
    w.pod(static_cast<std::uint32_t>(t.shape.size()));
    for (std::int64_t dim : t.shape) w.pod(dim);
  }
  return fnv1a64(w.bytes.data(), w.bytes.size(), 0xCBF29CE484222325ULL);
}

// ---------------------------------------------------------------------------
// pack_network
// ---------------------------------------------------------------------------

std::uint64_t pack_network(snn::SnnNetwork& net, const std::string& path,
                           const PackOptions& options) {
  if (net.empty()) throw std::invalid_argument("pack_network: empty network");
  if (options.input_shape.empty()) {
    throw std::invalid_argument("pack_network: options.input_shape is required");
  }
  if (options.probe_batch <= 0) {
    throw std::invalid_argument("pack_network: probe_batch must be positive");
  }

  DescribedNetwork d = describe_network(net);
  d.arch.precision = static_cast<std::uint32_t>(options.precision);

  // Deterministic probe batch + the bit-exact logits the artifact promises.
  // The probe runs at the precision the artifact records: an int8 pack flips
  // the live network to int8 first, so the canary logits are the ones an int8
  // replica reproduces. quantize_weight_per_row is deterministic, so the
  // network's lazily self-quantized weights equal the bytes written below.
  Shape probe_shape;
  probe_shape.push_back(options.probe_batch);
  for (std::int64_t dim : options.input_shape) probe_shape.push_back(dim);
  Tensor probe_inputs(probe_shape);
  Rng rng(options.probe_seed);
  for (std::int64_t i = 0; i < probe_inputs.numel(); ++i) {
    probe_inputs[i] = rng.uniform();
  }
  const Precision prev_precision = net.precision();
  net.set_precision(options.precision);
  net.reset_state();
  const Tensor probe_logits = net.forward(probe_inputs, /*train=*/false);
  net.reset_state();
  net.set_precision(prev_precision);

  // ---- section payloads ----
  const std::vector<char> arch_blob = write_arch_blob(d.arch);

  // Optional quant-weights payload: count, then per tensor
  // { index u32, rows u64, cols u64, scales f32[rows], data i8[rows*cols] }.
  ByteWriter quant;
  if (options.precision == Precision::kInt8) {
    quant.pod(static_cast<std::uint32_t>(d.tensors.size()));
    for (std::size_t i = 0; i < d.tensors.size(); ++i) {
      const Tensor& t = *d.tensor_sources[i];
      const std::int64_t rows = t.dim(0);
      const std::int64_t cols = t.numel() / rows;
      const QuantizedWeight qw = quantize_weight_per_row(t.data(), rows, cols);
      quant.pod(static_cast<std::uint32_t>(i));
      quant.pod(static_cast<std::uint64_t>(rows));
      quant.pod(static_cast<std::uint64_t>(cols));
      quant.raw(qw.scales.data(), qw.scales.size() * sizeof(float));
      quant.raw(qw.data.data(), qw.data.size());
    }
  }

  ByteWriter weights;
  for (std::size_t i = 0; i < d.tensors.size(); ++i) {
    weights.align(kAlignment);
    d.tensors[i].offset = weights.size();  // section-relative for now
    const Tensor& t = *d.tensor_sources[i];
    weights.raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }

  ByteWriter probe;
  probe.pod(net.time_steps());
  probe.pod(static_cast<std::uint32_t>(probe_inputs.rank()));
  for (std::int64_t dim : probe_inputs.shape()) probe.pod(dim);
  probe.pod(static_cast<std::uint32_t>(probe_logits.rank()));
  for (std::int64_t dim : probe_logits.shape()) probe.pod(dim);
  probe.raw(probe_inputs.data(),
            static_cast<std::size_t>(probe_inputs.numel()) * sizeof(float));
  probe.raw(probe_logits.data(),
            static_cast<std::size_t>(probe_logits.numel()) * sizeof(float));

  // ---- layout: header | table | payloads | footer ----
  struct Pending {
    SectionKind kind;
    const std::vector<char>* payload;
  };
  ByteWriter index;  // written after offsets are known; placeholder for order
  const std::uint32_t section_count =
      options.precision == Precision::kInt8 ? 5 : 4;
  std::uint64_t cursor = kHeaderBytes + section_count * kSectionEntryBytes;
  auto place = [&cursor](std::uint64_t size) {
    cursor = (cursor + kAlignment - 1) / kAlignment * kAlignment;
    const std::uint64_t at = cursor;
    cursor += size;
    return at;
  };
  const std::uint64_t arch_at = place(arch_blob.size());
  // Tensor index references absolute offsets, so the weights section must be
  // placed before the index payload is rendered. Order on disk:
  // arch, weights, tensor-index, probe.
  const std::uint64_t weights_at = place(weights.size());
  index.pod(static_cast<std::uint32_t>(d.tensors.size()));
  for (TensorEntry& t : d.tensors) {
    t.offset += weights_at;  // absolute now
    index.str(t.name);
    index.pod(static_cast<std::uint32_t>(t.shape.size()));
    for (std::int64_t dim : t.shape) index.pod(dim);
    index.pod(t.offset);
    index.pod(static_cast<std::uint64_t>(shape_numel(t.shape)) * sizeof(float));
  }
  const std::uint64_t index_at = place(index.size());
  const std::uint64_t probe_at = place(probe.size());
  const std::uint64_t quant_at =
      section_count == 5 ? place(quant.size()) : 0;
  const std::uint64_t file_size = cursor + kFooterBytes;

  std::vector<char> file(static_cast<std::size_t>(file_size), 0);
  auto put = [&file](std::uint64_t at, const void* src, std::uint64_t n) {
    std::memcpy(file.data() + at, src, n);
  };

  // Section table.
  const Pending sections[5] = {
      {SectionKind::kArch, &arch_blob},
      {SectionKind::kWeights, &weights.bytes},
      {SectionKind::kTensorIndex, &index.bytes},
      {SectionKind::kProbe, &probe.bytes},
      {SectionKind::kQuantWeights, &quant.bytes},
  };
  const std::uint64_t offsets[5] = {arch_at, weights_at, index_at, probe_at,
                                    quant_at};
  for (std::uint32_t s = 0; s < section_count; ++s) {
    ByteWriter entry;
    entry.pod(static_cast<std::uint32_t>(sections[s].kind));
    entry.pod(std::uint32_t{0});
    entry.pod(offsets[s]);
    entry.pod(static_cast<std::uint64_t>(sections[s].payload->size()));
    entry.pod(crc32(sections[s].payload->data(), sections[s].payload->size()));
    entry.pod(std::uint32_t{0});
    put(kHeaderBytes + s * kSectionEntryBytes, entry.bytes.data(), entry.size());
    put(offsets[s], sections[s].payload->data(), sections[s].payload->size());
  }

  // Header (CRC computed with the crc field itself zeroed).
  const std::uint64_t fingerprint = arch_fingerprint(d.arch, d.tensors);
  ByteWriter header;
  header.raw(kArtifactMagic, sizeof kArtifactMagic);
  header.pod(kFormatVersion);
  header.pod(std::uint32_t{0});  // header_crc placeholder
  header.pod(file_size);
  header.pod(fingerprint);
  header.pod(section_count);
  header.pod(std::uint32_t{0});  // flags
  header.align(kHeaderBytes);
  const std::uint32_t header_crc = crc32(header.bytes.data(), header.size());
  std::memcpy(header.bytes.data() + 12, &header_crc, sizeof header_crc);
  put(0, header.bytes.data(), header.size());

  // Footer: whole-file CRC over everything before it.
  ByteWriter footer;
  footer.raw(kFooterMagic, sizeof kFooterMagic);
  footer.pod(crc32(file.data(), static_cast<std::size_t>(file_size - kFooterBytes)));
  footer.pod(file_size);
  put(file_size - kFooterBytes, footer.bytes.data(), footer.size());

  try {
    atomic_write_file(path, file.data(), file.size());
  } catch (const std::runtime_error& e) {
    throw ArtifactError(ArtifactErrorCode::kIo, e.what());
  }
  obs::logf(obs::LogLevel::kInfo,
            "[artifact] packed %lld tensor(s), %lld layer(s), precision=%s, "
            "%llu bytes -> %s",
            static_cast<long long>(d.tensors.size()),
            static_cast<long long>(d.arch.layers.size()),
            to_string(options.precision),
            static_cast<unsigned long long>(file_size), path.c_str());
  return file_size;
}

// ---------------------------------------------------------------------------
// UllsnnArtifact::load
// ---------------------------------------------------------------------------

std::shared_ptr<const UllsnnArtifact> UllsnnArtifact::load(const std::string& path) {
  auto art = std::shared_ptr<UllsnnArtifact>(new UllsnnArtifact());
  art->map_ = MappedFile(path);
  const unsigned char* base = art->map_.data();
  const std::uint64_t size = art->map_.size();

  if (size < kHeaderBytes + kFooterBytes) {
    fail(ArtifactErrorCode::kTruncated, path,
         "file is " + std::to_string(size) + " bytes, smaller than header+footer");
  }

  // Header.
  if (std::memcmp(base, kArtifactMagic, sizeof kArtifactMagic) != 0) {
    fail(ArtifactErrorCode::kBadMagic, path, "not a ULSNARTF artifact");
  }
  Reader hr(base, kHeaderBytes, path, ArtifactErrorCode::kHeaderCorrupt);
  char magic[8];
  hr.raw(magic, sizeof magic);
  const auto version = hr.pod<std::uint32_t>();
  if (version != kFormatVersion) {
    fail(ArtifactErrorCode::kBadVersion, path,
         "format version " + std::to_string(version) + ", this build reads " +
             std::to_string(kFormatVersion));
  }
  const auto stored_header_crc = hr.pod<std::uint32_t>();
  const auto header_file_size = hr.pod<std::uint64_t>();
  const auto fingerprint = hr.pod<std::uint64_t>();
  const auto section_count = hr.pod<std::uint32_t>();
  std::vector<unsigned char> header_copy(base, base + kHeaderBytes);
  std::memset(header_copy.data() + 12, 0, sizeof stored_header_crc);
  if (crc32(header_copy.data(), header_copy.size()) != stored_header_crc) {
    fail(ArtifactErrorCode::kHeaderCorrupt, path, "header CRC mismatch");
  }
  if (header_file_size != size) {
    fail(ArtifactErrorCode::kTruncated, path,
         "header claims " + std::to_string(header_file_size) + " bytes, file has " +
             std::to_string(size));
  }
  if (section_count == 0 || section_count > kMaxSections) {
    fail(ArtifactErrorCode::kHeaderCorrupt, path, "section count out of range");
  }

  // Footer.
  const unsigned char* footer = base + size - kFooterBytes;
  if (std::memcmp(footer, kFooterMagic, sizeof kFooterMagic) != 0) {
    fail(ArtifactErrorCode::kFooterCorrupt, path,
         "footer magic missing (file truncated or overwritten mid-write)");
  }
  std::uint32_t file_crc = 0;
  std::uint64_t footer_file_size = 0;
  std::memcpy(&file_crc, footer + 4, sizeof file_crc);
  std::memcpy(&footer_file_size, footer + 8, sizeof footer_file_size);
  if (footer_file_size != size) {
    fail(ArtifactErrorCode::kFooterCorrupt, path, "footer size disagrees with file");
  }
  if (crc32(base, static_cast<std::size_t>(size - kFooterBytes)) != file_crc) {
    fail(ArtifactErrorCode::kFooterCorrupt, path, "whole-file CRC mismatch");
  }

  // Section table: bounds, alignment, per-section CRCs, exactly-once kinds.
  const std::uint64_t table_end = kHeaderBytes + section_count * kSectionEntryBytes;
  if (table_end > size - kFooterBytes) {
    fail(ArtifactErrorCode::kTruncated, path, "section table runs past the file");
  }
  struct Located {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    bool present = false;
  };
  Located arch_s, index_s, weights_s, probe_s, quant_s;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    Reader er(base + kHeaderBytes + s * kSectionEntryBytes, kSectionEntryBytes, path,
              ArtifactErrorCode::kSectionCorrupt);
    const auto kind = er.pod<std::uint32_t>();
    er.pod<std::uint32_t>();  // reserved
    const auto offset = er.pod<std::uint64_t>();
    const auto payload_size = er.pod<std::uint64_t>();
    const auto payload_crc = er.pod<std::uint32_t>();
    if (offset % kAlignment != 0) {
      fail(ArtifactErrorCode::kSectionCorrupt, path,
           "section " + std::to_string(s) + " payload is not 64-byte aligned");
    }
    if (offset < table_end || offset > size - kFooterBytes ||
        payload_size > size - kFooterBytes - offset) {
      fail(ArtifactErrorCode::kSectionCorrupt, path,
           "section " + std::to_string(s) + " is out of bounds");
    }
    if (crc32(base + offset, static_cast<std::size_t>(payload_size)) != payload_crc) {
      fail(ArtifactErrorCode::kSectionCorrupt, path,
           std::string("section '") + to_string(static_cast<SectionKind>(kind)) +
               "' payload CRC mismatch");
    }
    Located* slot = nullptr;
    switch (static_cast<SectionKind>(kind)) {
      case SectionKind::kArch: slot = &arch_s; break;
      case SectionKind::kTensorIndex: slot = &index_s; break;
      case SectionKind::kWeights: slot = &weights_s; break;
      case SectionKind::kProbe: slot = &probe_s; break;
      case SectionKind::kQuantWeights: slot = &quant_s; break;
      default:
        fail(ArtifactErrorCode::kSectionCorrupt, path,
             "unknown section kind " + std::to_string(kind));
    }
    if (slot->present) {
      fail(ArtifactErrorCode::kMalformed, path,
           std::string("duplicate section '") +
               to_string(static_cast<SectionKind>(kind)) + "'");
    }
    *slot = {offset, payload_size, true};
  }
  const std::pair<const Located*, const char*> required[] = {
      {&arch_s, "arch"},
      {&index_s, "tensor-index"},
      {&weights_s, "weights"},
      {&probe_s, "probe"},
  };
  for (const auto& [s, name] : required) {
    if (!s->present) {
      fail(ArtifactErrorCode::kMalformed, path,
           std::string("required section '") + name + "' missing");
    }
  }

  // Arch.
  {
    Reader r(base + arch_s.offset, arch_s.size, path, ArtifactErrorCode::kMalformed);
    art->arch_ = parse_arch_blob(r, path);
  }

  // Tensor index: every entry must sit inside the weights section, aligned,
  // with a size that matches its shape exactly.
  {
    Reader r(base + index_s.offset, index_s.size, path, ArtifactErrorCode::kMalformed);
    const auto count = r.pod<std::uint32_t>();
    if (count > kMaxTensors) {
      fail(ArtifactErrorCode::kMalformed, path, "tensor count out of range");
    }
    art->tensors_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      TensorEntry e;
      e.name = r.str(kMaxNameLen);
      const auto rank = r.pod<std::uint32_t>();
      if (rank > kMaxRank) {
        fail(ArtifactErrorCode::kMalformed, path,
             "tensor '" + e.name + "' rank exceeds bound");
      }
      e.shape.resize(rank);
      std::uint64_t numel = 1;
      for (auto& dim : e.shape) {
        dim = r.pod<std::int64_t>();
        if (dim < 0) {
          fail(ArtifactErrorCode::kMalformed, path,
               "tensor '" + e.name + "' has a negative dimension");
        }
        numel *= static_cast<std::uint64_t>(dim);
        if (numel * sizeof(float) > weights_s.size) {
          fail(ArtifactErrorCode::kMalformed, path,
               "tensor '" + e.name + "' larger than the weights section");
        }
      }
      e.offset = r.pod<std::uint64_t>();
      const auto byte_size = r.pod<std::uint64_t>();
      if (byte_size != numel * sizeof(float)) {
        fail(ArtifactErrorCode::kMalformed, path,
             "tensor '" + e.name + "' size disagrees with its shape");
      }
      if (e.offset % kAlignment != 0 || e.offset < weights_s.offset ||
          e.offset + byte_size > weights_s.offset + weights_s.size) {
        fail(ArtifactErrorCode::kMalformed, path,
             "tensor '" + e.name + "' payload escapes the weights section");
      }
      art->tensors_.push_back(std::move(e));
    }
    if (r.remaining() != 0) {
      fail(ArtifactErrorCode::kMalformed, path, "trailing bytes in tensor index");
    }
  }

  // Quant weights (optional): every entry must reference a valid tensor and
  // agree with its shape (rows = output channels = dim 0, rows*cols = numel),
  // so an int8 replica can never install a mis-sized operand.
  if (quant_s.present) {
    Reader r(base + quant_s.offset, quant_s.size, path, ArtifactErrorCode::kMalformed);
    const auto count = r.pod<std::uint32_t>();
    if (count > kMaxTensors) {
      fail(ArtifactErrorCode::kMalformed, path, "quant tensor count out of range");
    }
    std::vector<bool> seen(art->tensors_.size(), false);
    art->quant_weights_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto tensor_index = r.pod<std::uint32_t>();
      if (tensor_index >= art->tensors_.size()) {
        fail(ArtifactErrorCode::kMalformed, path,
             "quant entry references tensor " + std::to_string(tensor_index) +
                 " of " + std::to_string(art->tensors_.size()));
      }
      if (seen[tensor_index]) {
        fail(ArtifactErrorCode::kMalformed, path,
             "duplicate quant entry for tensor " + std::to_string(tensor_index));
      }
      seen[tensor_index] = true;
      const TensorEntry& te = art->tensors_[tensor_index];
      const auto rows = r.pod<std::uint64_t>();
      const auto cols = r.pod<std::uint64_t>();
      const std::uint64_t numel = static_cast<std::uint64_t>(shape_numel(te.shape));
      if (rows == 0 || cols == 0 || te.shape.empty() ||
          rows != static_cast<std::uint64_t>(te.shape[0]) || rows * cols != numel) {
        fail(ArtifactErrorCode::kMalformed, path,
             "quant entry for tensor '" + te.name + "' disagrees with its shape");
      }
      QuantizedWeight qw;
      qw.rows = static_cast<std::int64_t>(rows);
      qw.cols = static_cast<std::int64_t>(cols);
      qw.scales.resize(rows);
      qw.data.resize(rows * cols);
      r.raw(qw.scales.data(), rows * sizeof(float));
      r.raw(qw.data.data(), rows * cols);
      art->quant_weights_.emplace_back(static_cast<std::int32_t>(tensor_index),
                                       std::move(qw));
    }
    if (r.remaining() != 0) {
      fail(ArtifactErrorCode::kMalformed, path,
           "trailing bytes in quant-weights section");
    }
  }

  // Cross-check: every layer's weight reference resolves to a tensor whose
  // shape matches the synapse geometry, so make_network cannot throw an
  // untyped error later.
  const auto tensor_of = [&](std::int32_t index, const char* what) -> const TensorEntry& {
    if (index < 0 || index >= static_cast<std::int32_t>(art->tensors_.size())) {
      fail(ArtifactErrorCode::kMalformed, path,
           std::string(what) + " references tensor " + std::to_string(index) +
               " of " + std::to_string(art->tensors_.size()));
    }
    return art->tensors_[static_cast<std::size_t>(index)];
  };
  const auto check_conv = [&](std::int32_t index, const Conv2dSpec& spec,
                              const char* what) {
    const TensorEntry& e = tensor_of(index, what);
    const Shape expected = {spec.out_channels, spec.in_channels, spec.kernel,
                            spec.kernel};
    if (e.shape != expected) {
      fail(ArtifactErrorCode::kMalformed, path,
           std::string(what) + " weight shape " + shape_to_string(e.shape) +
               " does not match conv spec " + shape_to_string(expected));
    }
  };
  for (std::size_t i = 0; i < art->arch_.layers.size(); ++i) {
    const LayerDesc& l = art->arch_.layers[i];
    const std::string which = "layer " + std::to_string(i);
    switch (l.kind) {
      case LayerKind::kConv2d:
        check_conv(l.weight, l.conv, which.c_str());
        break;
      case LayerKind::kLinear: {
        const TensorEntry& e = tensor_of(l.weight, which.c_str());
        if (e.shape.size() != 2) {
          fail(ArtifactErrorCode::kMalformed, path,
               which + " linear weight must be rank 2");
        }
        break;
      }
      case LayerKind::kResidual:
        check_conv(l.weight, l.conv, which.c_str());
        check_conv(l.weight2, l.conv2, which.c_str());
        if (l.has_projection != 0) {
          check_conv(l.weight_projection, l.projection, which.c_str());
        }
        break;
      case LayerKind::kDropout:
        if (l.drop_prob < 0.0F || l.drop_prob >= 1.0F) {
          fail(ArtifactErrorCode::kMalformed, path, which + " drop_prob out of [0, 1)");
        }
        break;
      default:
        break;
    }
  }

  // Probe.
  {
    Reader r(base + probe_s.offset, probe_s.size, path, ArtifactErrorCode::kMalformed);
    art->probe_time_steps_ = r.pod<std::int64_t>();
    if (art->probe_time_steps_ <= 0 || art->probe_time_steps_ > 1024) {
      fail(ArtifactErrorCode::kMalformed, path, "probe time_steps out of range");
    }
    const auto read_shape = [&](Shape& shape) {
      const auto rank = r.pod<std::uint32_t>();
      if (rank == 0 || rank > kMaxRank) {
        fail(ArtifactErrorCode::kMalformed, path, "probe shape rank out of range");
      }
      shape.resize(rank);
      std::uint64_t numel = 1;
      for (auto& dim : shape) {
        dim = r.pod<std::int64_t>();
        if (dim <= 0) {
          fail(ArtifactErrorCode::kMalformed, path, "probe shape has a bad extent");
        }
        numel *= static_cast<std::uint64_t>(dim);
        if (numel * sizeof(float) > probe_s.size) {
          fail(ArtifactErrorCode::kMalformed, path,
               "probe payload larger than its section");
        }
      }
      return numel;
    };
    const std::uint64_t in_numel = read_shape(art->probe_input_shape_);
    const std::uint64_t out_numel = read_shape(art->probe_logits_shape_);
    if (art->probe_input_shape_[0] != art->probe_logits_shape_[0]) {
      fail(ArtifactErrorCode::kMalformed, path,
           "probe input and logits batch sizes disagree");
    }
    if (r.remaining() != (in_numel + out_numel) * sizeof(float)) {
      fail(ArtifactErrorCode::kMalformed, path, "probe data size mismatch");
    }
    art->probe_inputs_offset_ = probe_s.offset + r.pos();
    art->probe_logits_offset_ = art->probe_inputs_offset_ + in_numel * sizeof(float);
  }

  // The recorded fingerprint must match what this build computes from the
  // parsed structures — catches format skew between writer and reader.
  art->fingerprint_ = arch_fingerprint(art->arch_, art->tensors_);
  if (art->fingerprint_ != fingerprint) {
    fail(ArtifactErrorCode::kHeaderCorrupt, path,
         "header fingerprint disagrees with the architecture sections");
  }

  return art;
}

Tensor UllsnnArtifact::tensor_view(std::int64_t index) const {
  const TensorEntry& e = tensors_.at(static_cast<std::size_t>(index));
  return Tensor::borrow(e.shape,
                        reinterpret_cast<const float*>(map_.data() + e.offset));
}

Tensor UllsnnArtifact::probe_inputs() const {
  return Tensor::borrow(
      probe_input_shape_,
      reinterpret_cast<const float*>(map_.data() + probe_inputs_offset_));
}

Tensor UllsnnArtifact::probe_logits() const {
  return Tensor::borrow(
      probe_logits_shape_,
      reinterpret_cast<const float*>(map_.data() + probe_logits_offset_));
}

Shape UllsnnArtifact::input_shape() const {
  return Shape(probe_input_shape_.begin() + 1, probe_input_shape_.end());
}

std::unique_ptr<snn::SnnNetwork> UllsnnArtifact::make_network() const {
  auto net = std::make_unique<snn::SnnNetwork>(arch_.time_steps);
  net->set_encoding(static_cast<snn::Encoding>(arch_.encoding), arch_.encoder_seed);
  net->set_precision(precision());
  // Which synapse owns each tensor-table index, so pre-quantized weights from
  // the optional section land on the right layer below.
  std::vector<snn::SynapticConv*> conv_of(tensors_.size(), nullptr);
  std::vector<snn::SynapticLinear*> linear_of(tensors_.size(), nullptr);
  for (const LayerDesc& l : arch_.layers) {
    switch (l.kind) {
      case LayerKind::kConv2d: {
        auto& layer = net->emplace<snn::SpikingConv2d>(
            tensor_view(l.weight), l.conv, to_if_config(l.neuron, path()));
        conv_of[static_cast<std::size_t>(l.weight)] = &layer.synapse();
        break;
      }
      case LayerKind::kLinear: {
        auto& layer = net->emplace<snn::SpikingLinear>(
            tensor_view(l.weight), to_if_config(l.neuron, path()),
            l.with_neuron != 0);
        linear_of[static_cast<std::size_t>(l.weight)] = &layer.synapse();
        break;
      }
      case LayerKind::kMaxPool:
        net->emplace<snn::SpikingMaxPool>(l.pool);
        break;
      case LayerKind::kAvgPool:
        net->emplace<snn::SpikingAvgPool>(l.pool);
        break;
      case LayerKind::kDropout:
        net->emplace<snn::SpikingDropout>(l.drop_prob, net->dropout_rng());
        break;
      case LayerKind::kFlatten:
        net->emplace<snn::SpikingFlatten>();
        break;
      case LayerKind::kResidual: {
        auto& layer = net->emplace<snn::SpikingResidualBlock>(
            tensor_view(l.weight), l.conv, to_if_config(l.neuron, path()),
            tensor_view(l.weight2), l.conv2, to_if_config(l.neuron2, path()),
            l.has_projection != 0 ? tensor_view(l.weight_projection) : Tensor(),
            l.projection);
        conv_of[static_cast<std::size_t>(l.weight)] = &layer.conv1_synapse();
        conv_of[static_cast<std::size_t>(l.weight2)] = &layer.conv2_synapse();
        if (l.has_projection != 0) {
          conv_of[static_cast<std::size_t>(l.weight_projection)] =
              layer.projection_synapse_or_null();
        }
        break;
      }
    }
  }
  for (const auto& [index, qw] : quant_weights_) {
    const auto i = static_cast<std::size_t>(index);
    if (snn::SynapticConv* conv = conv_of[i]) {
      conv->set_quantized_weight(qw);
    } else if (snn::SynapticLinear* linear = linear_of[i]) {
      linear->set_quantized_weight(qw);
    }
  }
  return net;
}

}  // namespace ullsnn::artifact
