// ModelRegistry: versioned artifact hot-swap with a canary gate and
// automatic rollback.
//
// Deploy lifecycle (one deploy() call):
//
//   load          mmap + full validation (UllsnnArtifact::load) — any
//     |           corruption rejects here with a typed ArtifactError.
//   arch gate     fingerprint must match the active model's topology
//     |           (kArchMismatch) so a swap can never change input/output
//     |           contracts mid-flight.
//   canary        a replica is built from the candidate and the packer's
//     |           recorded probe batch is replayed at the recorded T. The
//     |           logits must (a) pass the HealthMonitor numeric scan and
//     |           (b) match the recorded logits bit-for-bit — the kernels
//     |           are bitwise deterministic, so any mismatch means the
//     |           weights or descriptors do not reproduce the packed model.
//   flip          the active pointer swaps atomically; version increments.
//     |           Workers notice between batches and rebuild; in-flight
//     |           batches complete on the old replica (drain, zero loss).
//   watch         the first `health_window` batches served on the new
//               version are watched; a regression auto-rolls back to the
//               previous artifact and records why.
//
// Every accept, reject, rollback, and auto-rollback is appended to a
// transition history (same spirit as serve::CircuitBreaker::history()), so
// a deploy that went wrong can be reconstructed after the fact.
//
// Thread-safety: all methods are safe to call concurrently; active() hands
// out a shared_ptr snapshot that pins the mmap for as long as any replica
// built from it is alive.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/artifact/artifact.h"
#include "src/util/mutex.h"

namespace ullsnn::artifact {

struct RegistryConfig {
  /// Replay the packed probe batch and require bit-exact logits before
  /// activating a candidate. Disable only in tests that study the gate.
  bool verify_canary = true;
  /// Require the candidate's arch fingerprint to equal the active model's.
  /// Ignored for the first deploy (nothing to match against).
  bool require_same_arch = true;
  /// |logit| above this counts as numeric distress during the canary scan.
  float explosion_threshold = 1e6F;
  /// Number of batches after an activation that are watched for a health
  /// regression. 0 disables the post-swap watch.
  std::int64_t health_window = 8;
  /// Unhealthy batches within the window that trigger auto-rollback.
  std::int64_t health_failure_threshold = 1;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});

  /// Immutable view of the currently active model. `artifact` is null and
  /// `version` is 0 until the first successful deploy.
  struct Snapshot {
    std::shared_ptr<const UllsnnArtifact> artifact;
    std::uint64_t version = 0;
  };

  /// One history entry per accepted, rejected, or rolled-back deploy.
  struct Transition {
    std::int64_t sequence = 0;   // monotonic event counter
    std::uint64_t version = 0;   // active version AFTER the event
    std::string event;           // "activate" | "reject" | "rollback" | "auto-rollback"
    std::string detail;
  };

  /// Validate, canary, and activate the artifact at `path`. Returns the new
  /// active version. Throws ArtifactError on any rejection (load failure,
  /// kArchMismatch, failed canary); the active model is untouched and the
  /// rejection is recorded in history().
  std::uint64_t deploy(const std::string& path);

  /// Swap back to the artifact that was active before the last activation.
  /// Returns the new version. Throws std::logic_error when there is nothing
  /// to roll back to.
  std::uint64_t rollback(const std::string& reason);

  Snapshot active() const;
  /// Current version; cheap enough for workers to poll between batches.
  std::uint64_t version() const;
  bool has_active() const { return version() != 0; }
  /// True while a previous artifact is retained as a rollback target.
  bool can_rollback() const;

  /// Post-swap health feed (ServeEngine workers call this after every
  /// batch). Verdicts for non-active versions are ignored, so a draining
  /// worker can never trigger a rollback of a model it is not serving.
  /// Within the first `health_window` batches of a fresh activation,
  /// `health_failure_threshold` unhealthy verdicts roll back automatically.
  void record_batch_health(std::uint64_t version, bool healthy);

  std::vector<Transition> history() const;
  std::int64_t deploys() const;
  std::int64_t rejects() const;
  std::int64_t rollbacks() const;  // manual + automatic

 private:
  /// Replay the probe batch; throws ArtifactError(kMalformed/kArchMismatch)
  /// style errors via `fail` on mismatch. Runs the candidate's forward pass,
  /// so it must NOT hold mu_ (EXCLUDES keeps a deploy from serializing the
  /// serving path behind a canary replay).
  void run_canary(const UllsnnArtifact& candidate) const EXCLUDES(mu_);
  /// Append a transition.
  void note(const char* event, std::string detail) REQUIRES(mu_);
  /// Flip to `next`, reset the health window.
  void activate_locked(std::shared_ptr<const UllsnnArtifact> next,
                       const char* event, std::string detail) REQUIRES(mu_);

  RegistryConfig config_;
  mutable Mutex mu_;
  std::shared_ptr<const UllsnnArtifact> active_ GUARDED_BY(mu_);
  /// Rollback target.
  std::shared_ptr<const UllsnnArtifact> previous_ GUARDED_BY(mu_);
  std::uint64_t version_ GUARDED_BY(mu_) = 0;
  std::int64_t sequence_ GUARDED_BY(mu_) = 0;
  std::int64_t deploys_ GUARDED_BY(mu_) = 0;
  std::int64_t rejects_ GUARDED_BY(mu_) = 0;
  std::int64_t rollbacks_ GUARDED_BY(mu_) = 0;
  // Post-activation watch window.
  std::int64_t window_remaining_ GUARDED_BY(mu_) = 0;
  std::int64_t window_unhealthy_ GUARDED_BY(mu_) = 0;
  std::vector<Transition> history_ GUARDED_BY(mu_);
};

}  // namespace ullsnn::artifact
