// On-disk layout of the ULLSNN model artifact (.ullsnn-art), the crash-safe
// zero-copy deployment unit for converted SNNs.
//
// A checkpoint (util/serialize.h) is a *training* format: parsed and copied
// into freshly allocated tensors on every load. An artifact is a *serving*
// format: a flat, 64-byte-aligned, little-endian file that is mmap'd
// read-only and shared by every worker in every process on the host. The
// split the conversion guarantees — immutable weights, mutable state only in
// membranes and RNG streams (the reset_state() isolation contract) — is
// exactly what makes the read-only sharing sound.
//
// Layout (all offsets absolute, all integers little-endian):
//
//   [0, 64)    ArtifactHeader: magic "ULSNARTF", format version, CRC of the
//              header itself, total file size, arch fingerprint, section
//              count.
//   [64, ...)  Section table: `section_count` entries of 32 bytes each
//              { kind, offset, size, crc32(payload) }.
//   payloads   Each section payload starts on a 64-byte boundary. Tensor
//              data inside kWeights is additionally 64-byte aligned per
//              tensor, so borrowed views sit on cache-line boundaries.
//   [size-16, size)  ArtifactFooter: magic "ULFT", crc32 of every byte
//              before the footer, and the file size again.
//
// Every structure is guarded: the header carries its own CRC, every section
// carries a payload CRC, and the footer checksums the whole file. A torn
// write, a truncation at any offset, or a flipped bit anywhere is rejected
// at load with a typed ArtifactError (proven byte-by-byte by the corruption
// matrix in tests/artifact/). Writers produce the file with
// write-to-temp + fsync + atomic-rename, so a crash mid-write can never
// leave a half-written file under the real name.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ullsnn::artifact {

inline constexpr char kArtifactMagic[8] = {'U', 'L', 'S', 'N', 'A', 'R', 'T', 'F'};
inline constexpr char kFooterMagic[4] = {'U', 'L', 'F', 'T'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint64_t kAlignment = 64;
inline constexpr std::uint64_t kHeaderBytes = 64;
inline constexpr std::uint64_t kSectionEntryBytes = 32;
inline constexpr std::uint64_t kFooterBytes = 16;

// Sanity bounds: a corrupt count field must fail fast, not drive a huge loop
// or allocation before the mismatch is noticed.
inline constexpr std::uint32_t kMaxSections = 64;
inline constexpr std::uint32_t kMaxLayers = 4096;
inline constexpr std::uint32_t kMaxTensors = 65536;
inline constexpr std::uint32_t kMaxNameLen = 4096;
inline constexpr std::uint32_t kMaxRank = 8;

/// Section payload kinds. Exactly one of each required kind per file;
/// optional kinds appear at most once.
enum class SectionKind : std::uint32_t {
  kArch = 1,          // layer descriptors + temporal metadata (required)
  kTensorIndex = 2,   // name/shape/offset table into kWeights (required)
  kWeights = 3,       // raw f32 tensor payloads, 64-byte aligned (required)
  kProbe = 4,         // canary probe batch + bit-exact expected logits (required)
  kQuantWeights = 5,  // optional: per-output-channel int8 weights + f32 scales
};

const char* to_string(SectionKind kind);

/// Why a load or deploy was refused. Every rejection path maps to exactly
/// one code so callers (registry, tools, tests) can branch without parsing
/// message strings.
enum class ArtifactErrorCode {
  kIo,              // open/stat/mmap/write failure
  kTruncated,       // file shorter than its structures claim
  kBadMagic,        // not an artifact file
  kBadVersion,      // format version from the future (or zero)
  kHeaderCorrupt,   // header CRC mismatch or nonsense header fields
  kSectionCorrupt,  // a section payload fails its CRC or its table entry is out of bounds
  kFooterCorrupt,   // footer magic/CRC/size mismatch
  kMalformed,       // structurally invalid content inside an intact section
  kArchMismatch,    // fingerprint differs from what the caller required
};

const char* to_string(ArtifactErrorCode code);

/// Typed load/validation error. what() always names the file and the reason;
/// code() says which guard fired.
class ArtifactError : public std::runtime_error {
 public:
  ArtifactError(ArtifactErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ArtifactErrorCode code() const { return code_; }

 private:
  ArtifactErrorCode code_;
};

}  // namespace ullsnn::artifact
