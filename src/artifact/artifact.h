// UllsnnArtifact: the zero-copy model artifact — packer, paranoid loader,
// and borrowed-weight network builder.
//
// Packing (pack_network): a live SnnNetwork is walked into a self-contained
// architecture descriptor (layer kinds + specs + neuron dynamics), its
// synaptic weights are laid out 64-byte aligned, and a deterministic probe
// batch is pushed through the network so the artifact records the exact
// logits the model must reproduce after any future load. The file is
// written to "<path>.tmp", fsync'd, and atomically renamed — a crash
// mid-pack never leaves a partial artifact under the real name.
//
// Loading (UllsnnArtifact::load): mmap read-only, then verify — header CRC,
// footer CRC over the whole file, per-section CRCs, bounds and alignment of
// every table entry, and structural validity of every descriptor. Any
// truncation, flipped bit, or nonsense field is rejected with a typed
// ArtifactError before a single tensor is touched. The fault-injection
// corruption matrix (tests/artifact/, `ctest -L artifact`) proves this for
// every section boundary and representative byte flips.
//
// Serving (make_network): builds an SnnNetwork whose synaptic weights are
// Tensor::borrow views straight into the mapping — worker spin-up is
// O(layers) allocations plus page faults, not a parse-and-copy of every
// parameter. Mutable runtime state (membranes, BPTT caches, encoder RNG) is
// owned per replica, so the replicas are exactly as isolated as the
// reset_state() contract requires. Callers must keep the artifact alive for
// as long as any replica exists (ModelRegistry pins it with a shared_ptr).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/artifact/artifact_format.h"
#include "src/artifact/mapped_file.h"
#include "src/snn/snn_network.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace ullsnn::artifact {

/// Layer taxonomy of the serialized architecture descriptor. Values are part
/// of the on-disk format; never renumber.
enum class LayerKind : std::uint32_t {
  kConv2d = 1,
  kLinear = 2,
  kMaxPool = 3,
  kAvgPool = 4,
  kDropout = 5,
  kFlatten = 6,
  kResidual = 7,
};

/// IF dynamics of one neuron site, as stored on disk. Thresholds and leaks
/// live here (they are scalars), not in the weights section.
struct NeuronDesc {
  float v_threshold = 1.0F;
  float leak = 1.0F;
  float beta = 1.0F;
  float initial_membrane_fraction = 0.0F;
  std::uint32_t reset = 0;  // snn::ResetMode
  std::uint8_t train_threshold = 0;
  std::uint8_t train_leak = 0;
};

/// One layer of the serialized architecture. Tensor references are indices
/// into the artifact's tensor table (-1 = none).
struct LayerDesc {
  LayerKind kind = LayerKind::kFlatten;
  Conv2dSpec conv;        // kConv2d; kResidual conv1
  Conv2dSpec conv2;       // kResidual conv2
  Conv2dSpec projection;  // kResidual projection (valid iff has_projection)
  Pool2dSpec pool;        // kMaxPool / kAvgPool
  NeuronDesc neuron;      // kConv2d / kLinear / kResidual neuron1
  NeuronDesc neuron2;     // kResidual neuron2
  std::uint8_t with_neuron = 0;     // kLinear: classifier head has none
  std::uint8_t has_projection = 0;  // kResidual
  float drop_prob = 0.0F;           // kDropout
  std::int32_t weight = -1;         // kConv2d / kLinear / kResidual conv1
  std::int32_t weight2 = -1;        // kResidual conv2
  std::int32_t weight_projection = -1;
};

/// Temporal + topological description of the whole network.
struct ArchDescriptor {
  std::int64_t time_steps = 0;
  std::uint32_t encoding = 0;  // snn::Encoding
  std::uint64_t encoder_seed = 99;
  /// Serving precision (ullsnn::Precision). Arch blob v1 files predate the
  /// field and parse as kFp32; v2 stores it explicitly. Not part of the
  /// structural fingerprint — an int8 repack of a model hot-swaps over its
  /// fp32 predecessor.
  std::uint32_t precision = 0;
  std::vector<LayerDesc> layers;
};

/// One entry of the tensor table. `offset` is absolute into the file and
/// 64-byte aligned; the payload is numel(shape) little-endian f32s.
struct TensorEntry {
  std::string name;
  Shape shape;
  std::uint64_t offset = 0;
};

struct PackOptions {
  /// Per-sample input shape, e.g. {3, 32, 32}. Required.
  Shape input_shape;
  /// Probe batch size recorded for the canary gate.
  std::int64_t probe_batch = 4;
  /// Seed for the deterministic probe inputs (uniform in [0, 1)).
  std::uint64_t probe_seed = 0xA11CE;
  /// Serving precision recorded in the artifact. kInt8 additionally writes a
  /// kQuantWeights section (per-output-channel symmetric int8 + f32 scales,
  /// quantized deterministically from the fp32 weights at pack time) and runs
  /// the canary probe at int8 so the recorded logits are the ones an int8
  /// replica must reproduce bit-exactly.
  Precision precision = Precision::kFp32;
};

/// Serialize `net` (weights, architecture, probe logits) into an artifact at
/// `path`. Runs `net.reset_state()` and a probe forward pass as a side
/// effect. Returns the file size in bytes. Throws ArtifactError on I/O
/// failure or std::invalid_argument on unpackable networks / bad options.
std::uint64_t pack_network(snn::SnnNetwork& net, const std::string& path,
                           const PackOptions& options);

/// Structural fingerprint (FNV-1a 64) of an architecture: layer kinds,
/// synapse/pool geometry, and weight shapes — NOT threshold values, T, or
/// encoding, so a retrained or re-converted model of the same topology
/// fingerprints identically and is hot-swappable over its predecessor.
std::uint64_t arch_fingerprint(const ArchDescriptor& arch,
                               const std::vector<TensorEntry>& tensors);

class UllsnnArtifact {
 public:
  /// Map and fully validate `path`. Throws ArtifactError (see
  /// artifact_format.h for the rejection taxonomy). The returned artifact is
  /// immutable and safe to share across threads.
  static std::shared_ptr<const UllsnnArtifact> load(const std::string& path);

  UllsnnArtifact(const UllsnnArtifact&) = delete;
  UllsnnArtifact& operator=(const UllsnnArtifact&) = delete;

  const std::string& path() const { return map_.path(); }
  std::uint64_t file_size() const { return map_.size(); }
  std::uint64_t fingerprint() const { return fingerprint_; }
  const ArchDescriptor& arch() const { return arch_; }
  std::int64_t time_steps() const { return arch_.time_steps; }
  Precision precision() const { return static_cast<Precision>(arch_.precision); }

  /// Pre-quantized weights from the optional kQuantWeights section, keyed by
  /// tensor-table index (validated against the tensor shapes at load). Empty
  /// for fp32 artifacts.
  const std::vector<std::pair<std::int32_t, QuantizedWeight>>& quant_weights() const {
    return quant_weights_;
  }

  std::int64_t tensor_count() const {
    return static_cast<std::int64_t>(tensors_.size());
  }
  const std::vector<TensorEntry>& tensors() const { return tensors_; }
  /// Borrowed view into the mapping. The artifact must outlive the tensor.
  Tensor tensor_view(std::int64_t index) const;

  /// Canary probe recorded by the packer: inputs [P, ...], the bit-exact
  /// logits [P, classes] the model produced at pack time, and the T it ran
  /// at. All borrowed views.
  Tensor probe_inputs() const;
  Tensor probe_logits() const;
  std::int64_t probe_time_steps() const { return probe_time_steps_; }
  /// Per-sample input shape (probe inputs minus the batch dimension).
  Shape input_shape() const;

  /// Build a worker replica: borrowed weight views over the mapping, owned
  /// runtime state. O(layers), not O(parameters).
  std::unique_ptr<snn::SnnNetwork> make_network() const;

  /// True iff `p` points into this artifact's mapping — lets tests assert
  /// that replica weights are genuinely zero-copy.
  bool contains(const void* p) const {
    const auto* b = static_cast<const unsigned char*>(p);
    return b >= map_.data() && b < map_.data() + map_.size();
  }

 private:
  UllsnnArtifact() = default;

  MappedFile map_;
  ArchDescriptor arch_;
  std::vector<TensorEntry> tensors_;
  std::vector<std::pair<std::int32_t, QuantizedWeight>> quant_weights_;
  std::uint64_t fingerprint_ = 0;
  std::int64_t probe_time_steps_ = 0;
  Shape probe_input_shape_;
  Shape probe_logits_shape_;
  std::uint64_t probe_inputs_offset_ = 0;
  std::uint64_t probe_logits_offset_ = 0;
};

}  // namespace ullsnn::artifact
