#include "src/artifact/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/artifact/artifact_format.h"
#include "src/util/errno_string.h"

namespace ullsnn::artifact {

namespace {
[[noreturn]] void raise_io(const std::string& op, const std::string& path) {
  throw ArtifactError(ArtifactErrorCode::kIo,
                      "MappedFile: " + op + " failed for " + path + ": " +
                          errno_string(errno));
}
}  // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) raise_io("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    raise_io("fstat", path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      raise_io("mmap", path);
    }
    data_ = static_cast<const unsigned char*>(p);
    // The loader validates the whole file (CRCs) immediately after mapping;
    // tell the kernel the first pass is sequential.
    ::madvise(const_cast<unsigned char*>(data_), size_, MADV_SEQUENTIAL);
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed (and workers must not inherit it).
  ::close(fd);
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

}  // namespace ullsnn::artifact
