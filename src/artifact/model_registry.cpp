#include "src/artifact/model_registry.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/robust/health.h"

namespace ullsnn::artifact {

ModelRegistry::ModelRegistry(RegistryConfig config) : config_(config) {
  if (config_.health_window < 0 || config_.health_failure_threshold <= 0) {
    throw std::invalid_argument("ModelRegistry: bad health window config");
  }
}

void ModelRegistry::run_canary(const UllsnnArtifact& candidate) const {
  std::unique_ptr<snn::SnnNetwork> replica = candidate.make_network();
  replica->set_time_steps(candidate.probe_time_steps());
  replica->reset_state();
  const Tensor inputs = candidate.probe_inputs();
  const Tensor logits = replica->forward(inputs, /*train=*/false);

  robust::GuardConfig gc;
  gc.policy = robust::GuardPolicy::kOff;
  gc.explosion_threshold = config_.explosion_threshold;
  robust::HealthMonitor monitor(gc);
  robust::HealthReport report;
  monitor.scan_tensor("canary.logits", logits, report);
  if (!report.healthy()) {
    throw ArtifactError(ArtifactErrorCode::kMalformed,
                        "canary: " + candidate.path() +
                            ": probe logits failed the numeric health scan");
  }

  const Tensor expected = candidate.probe_logits();
  if (logits.shape() != expected.shape()) {
    throw ArtifactError(ArtifactErrorCode::kMalformed,
                        "canary: " + candidate.path() + ": probe logits shape " +
                            shape_to_string(logits.shape()) +
                            " != recorded " + shape_to_string(expected.shape()));
  }
  if (std::memcmp(logits.data(), expected.data(),
                  static_cast<std::size_t>(expected.numel()) * sizeof(float)) != 0) {
    throw ArtifactError(
        ArtifactErrorCode::kMalformed,
        "canary: " + candidate.path() +
            ": replayed probe logits are not bit-identical to the packed ones");
  }
}

void ModelRegistry::note(const char* event, std::string detail) {
  Transition t;
  t.sequence = ++sequence_;
  t.version = version_;
  t.event = event;
  t.detail = std::move(detail);
  // Mirror every registry transition into the flight recorder's event ring.
  // An auto-rollback (or a regression with no rollback target) is an anomaly
  // and additionally triggers a rate-limited dump.
  const bool anomaly = std::strcmp(event, "auto-rollback") == 0 ||
                       std::strcmp(event, "health-regression") == 0;
  if (anomaly) {
    obs::FlightRecorder::instance().note_anomaly(
        "registry", "%s v%llu: %s", event,
        static_cast<unsigned long long>(version_), t.detail.c_str());
  } else {
    obs::FlightRecorder::instance().record_event(
        "registry", "%s v%llu: %s", event,
        static_cast<unsigned long long>(version_), t.detail.c_str());
  }
  history_.push_back(std::move(t));
}

void ModelRegistry::activate_locked(std::shared_ptr<const UllsnnArtifact> next,
                                    const char* event, std::string detail) {
  previous_ = std::move(active_);
  active_ = std::move(next);
  ++version_;
  window_remaining_ = config_.health_window;
  window_unhealthy_ = 0;
  note(event, std::move(detail));
  obs::logf(obs::LogLevel::kInfo, "[registry] %s -> v%llu (%s)", event,
            static_cast<unsigned long long>(version_),
            history_.back().detail.c_str());
}

std::uint64_t ModelRegistry::deploy(const std::string& path) {
  std::shared_ptr<const UllsnnArtifact> candidate;
  try {
    candidate = UllsnnArtifact::load(path);

    {
      MutexLock lock(mu_);
      if (config_.require_same_arch && active_ != nullptr &&
          candidate->fingerprint() != active_->fingerprint()) {
        throw ArtifactError(
            ArtifactErrorCode::kArchMismatch,
            "deploy: " + path + ": arch fingerprint differs from the active "
                                "model (topology change needs a new registry)");
      }
    }

    if (config_.verify_canary) run_canary(*candidate);
  } catch (const ArtifactError& e) {
    MutexLock lock(mu_);
    ++rejects_;
    note("reject", path + ": " + e.what());
    obs::logf(obs::LogLevel::kWarn, "[registry] rejected %s: %s", path.c_str(),
              e.what());
    throw;
  }

  MutexLock lock(mu_);
  ++deploys_;
  activate_locked(std::move(candidate), "activate", path);
  return version_;
}

std::uint64_t ModelRegistry::rollback(const std::string& reason) {
  MutexLock lock(mu_);
  if (previous_ == nullptr) {
    throw std::logic_error("ModelRegistry::rollback: no previous version");
  }
  ++rollbacks_;
  std::shared_ptr<const UllsnnArtifact> target = std::move(previous_);
  activate_locked(std::move(target), "rollback", reason);
  // The rolled-away artifact is dropped as a target: rolling "back" to the
  // model we just fled would ping-pong.
  previous_ = nullptr;
  return version_;
}

ModelRegistry::Snapshot ModelRegistry::active() const {
  MutexLock lock(mu_);
  return Snapshot{active_, version_};
}

std::uint64_t ModelRegistry::version() const {
  MutexLock lock(mu_);
  return version_;
}

bool ModelRegistry::can_rollback() const {
  MutexLock lock(mu_);
  return previous_ != nullptr;
}

void ModelRegistry::record_batch_health(std::uint64_t version, bool healthy) {
  MutexLock lock(mu_);
  if (version != version_ || window_remaining_ <= 0) return;
  --window_remaining_;
  if (healthy) return;
  ++window_unhealthy_;
  if (window_unhealthy_ < config_.health_failure_threshold) return;
  if (previous_ == nullptr) {
    // Nothing to fall back to; record the regression and keep serving.
    note("health-regression",
         "post-swap health regression with no rollback target");
    obs::logf(obs::LogLevel::kError,
              "[registry] health regression on v%llu but no rollback target",
              static_cast<unsigned long long>(version_));
    window_remaining_ = 0;
    return;
  }
  ++rollbacks_;
  std::shared_ptr<const UllsnnArtifact> target = std::move(previous_);
  activate_locked(std::move(target), "auto-rollback",
                  std::to_string(window_unhealthy_) +
                      " unhealthy batch(es) inside the post-swap window");
  previous_ = nullptr;
}

std::vector<ModelRegistry::Transition> ModelRegistry::history() const {
  MutexLock lock(mu_);
  return history_;
}

std::int64_t ModelRegistry::deploys() const {
  MutexLock lock(mu_);
  return deploys_;
}

std::int64_t ModelRegistry::rejects() const {
  MutexLock lock(mu_);
  return rejects_;
}

std::int64_t ModelRegistry::rollbacks() const {
  MutexLock lock(mu_);
  return rollbacks_;
}

}  // namespace ullsnn::artifact
