// Read-only memory mapping with RAII unmap. The mapping is PROT_READ, so a
// stray write through a borrowed pointer faults instead of silently
// corrupting the artifact every worker shares — the kernel enforces the
// immutability the conversion only promises.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ullsnn::artifact {

class MappedFile {
 public:
  MappedFile() = default;
  /// Map `path` read-only. Throws ArtifactError(kIo) on open/stat/mmap
  /// failure; an empty file maps successfully with size() == 0.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  const unsigned char* data() const { return data_; }
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void reset() noexcept;

  const unsigned char* data_ = nullptr;
  std::uint64_t size_ = 0;
  std::string path_;
};

}  // namespace ullsnn::artifact
