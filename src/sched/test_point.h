// Model-checker instrumentation points for lock-free code.
//
// The deterministic interleaving explorer (src/sched/sched.h) serializes
// real threads and only switches between them at *decision points*. For
// mutex-based structures, op-call granularity is enough — each public
// operation is atomic under its lock, so interleaving whole calls covers
// every observable schedule. Lock-free algorithms (the flight-recorder ring,
// Gauge's CAS loop) have races *inside* one call, so those sites carry an
// ULLSNN_TEST_POINT("name") marker at each capability-free program point
// where a context switch could change the outcome.
//
// Production cost: one relaxed load of a null function pointer and an
// untaken branch — no fence, no call. The hook is process-global and only
// installed by the sched harness while a model test runs single-process.
//
// Placement rule: test points must sit at points where the thread holds no
// lock and spins on no other thread's progress; yielding inside a held
// critical section or a busy-wait would deadlock the cooperative scheduler,
// which runs exactly one thread at a time.
#pragma once

#include <atomic>

namespace ullsnn::sched {

using TestPointFn = void (*)(const char* name);

/// Global hook; null in production. The sched harness installs a trampoline
/// that parks the calling thread until the scheduler grants it the next step.
/// relaxed: the hook is installed before any model thread starts and removed
/// after all join; within a run the pointer never changes, so no ordering is
/// needed — thread creation/join provide the happens-before edges.
extern std::atomic<TestPointFn> g_test_point;

inline void test_point(const char* name) noexcept {
  TestPointFn fn = g_test_point.load(std::memory_order_relaxed);
  if (fn != nullptr) fn(name);
}

}  // namespace ullsnn::sched

/// Marks a schedulable decision point inside lock-free code. `name` shows up
/// in schedule traces when reproducing a failure.
#define ULLSNN_TEST_POINT(name) ::ullsnn::sched::test_point(name)
