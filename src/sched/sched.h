// Deterministic interleaving explorer — a small model checker for the
// repo's concurrent structures.
//
// TSan finds the races a particular schedule happens to exercise; this
// harness *chooses* the schedule. Real std::threads run the model bodies,
// but a cooperative scheduler serializes them: exactly one thread executes
// at a time, and control only changes hands at explicit decision points
// (sched::yield_point in test bodies, or ULLSNN_TEST_POINT markers inside
// lock-free production code when RunOptions::hook_test_points is set). At
// each decision point the scheduler picks which runnable thread continues;
// the sequence of picks IS the interleaving.
//
// Because each pick is recorded as an index into the sorted runnable set,
// a run serializes to a dot-joined schedule string ("0.2.1.0...") that
// replays the exact interleaving — a failing schedule printed by a test is
// a deterministic reproduction, not a flake (see docs/concurrency.md).
//
// explore() enumerates interleavings exhaustively (depth-first over choice
// prefixes, rightmost-increment — every enumerated schedule is distinct by
// construction) up to a run budget, then optionally samples seeded random
// tails for trees too large to exhaust.
//
// Model rules:
//  * Bodies must be non-blocking between decision points: use try_push /
//    try_pop / wait_for(0ms)-style operations. A body that blocks on a
//    condition variable never reaches its next decision point, and the
//    scheduler (which runs exactly one thread) would hang — a watchdog
//    timeout aborts such a run with a diagnostic instead.
//  * hook_test_points may only be enabled when every ULLSNN_TEST_POINT the
//    bodies reach sits at a lock-free program point (true for Ring and
//    atomic_add_double). Parking a thread that holds a mutex would block
//    any other body that takes the same mutex.
//  * Bodies must be deterministic given the schedule (no wall-clock, no
//    unseeded randomness), or the depth-first enumeration is unsound.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sched/test_point.h"

namespace ullsnn::sched {

/// xorshift-free deterministic PRNG step (splitmix64): implementation-defined
/// std distributions would make random schedules differ across standard
/// libraries, so the harness draws raw 64-bit values and reduces by modulo.
std::uint64_t splitmix64(std::uint64_t& state);

std::string format_schedule(const std::vector<int>& choices);
std::vector<int> parse_schedule(const std::string& schedule);

struct RunOptions {
  /// Forced choice prefix (replay or DFS enumeration). Each entry is an
  /// index into that step's sorted runnable set; out-of-range entries clamp.
  std::vector<int> forced;
  /// After the prefix: pick randomly (seeded) instead of leftmost.
  bool random_fallback = false;
  std::uint64_t seed = 0;
  /// Route ULLSNN_TEST_POINT markers in production code into the scheduler.
  bool hook_test_points = false;
  /// Abort the run (completed=false) past this many decision points.
  std::int64_t max_steps = 100000;
  /// How long the scheduler waits for the granted thread to reach its next
  /// decision point before declaring the run wedged (a body blocked outside
  /// scheduler control — see the model rules above).
  std::chrono::milliseconds grant_timeout{10000};
};

struct RunResult {
  std::vector<int> choices;  // pick per step (index into the runnable set)
  std::vector<int> options;  // runnable-set size at each step
  std::string schedule;      // format_schedule(choices)
  bool completed = true;     // false: max_steps exceeded or a body wedged
  std::string error;         // why completed == false
};

class Scheduler {
 public:
  /// Run bodies[0..n) to completion under one controlled interleaving.
  /// Threads are spawned fresh per run and joined before returning.
  static RunResult run(std::vector<std::function<void()>> bodies,
                       const RunOptions& opts = {});
};

/// Decision point inside a model body. Always honored when the calling
/// thread belongs to an active scheduled run; no-op otherwise (so helper
/// code shared with normal tests stays usable).
void yield_point(const char* name = "yield");

/// One model instance: fresh bodies (state must be rebuilt per run — the
/// explorer calls the factory once per interleaving) plus an invariant check
/// that runs after all bodies join. verify throws to fail the run.
struct ModelRun {
  std::vector<std::function<void()>> bodies;
  std::function<void()> verify;
};

struct ExploreOptions {
  /// Budget for the exhaustive depth-first phase. If the schedule tree is
  /// larger, enumeration simply stops at the budget (still all-distinct).
  std::int64_t max_exhaustive_runs = 4000;
  /// Additional seeded-random schedules after the exhaustive phase.
  std::int64_t random_runs = 0;
  std::uint64_t seed = 0x5EED;
  bool hook_test_points = false;
  std::int64_t max_steps = 100000;
};

struct ExploreStats {
  std::int64_t runs = 0;      // total interleavings executed
  std::int64_t distinct = 0;  // distinct schedule strings observed
  bool exhausted = false;     // the whole tree fit in the exhaustive budget
};

/// A verify failure (or wedged run), carrying the replay schedule.
class ScheduleFailure : public std::runtime_error {
 public:
  ScheduleFailure(std::string schedule, const std::string& what);
  const std::string& schedule() const { return schedule_; }

 private:
  std::string schedule_;
};

/// Enumerate interleavings of the model; throws ScheduleFailure (with the
/// offending schedule string) on the first invariant violation.
ExploreStats explore(const std::function<ModelRun()>& make_run,
                     const ExploreOptions& opts = {});

/// Re-execute one schedule (e.g. printed by a ScheduleFailure) against a
/// fresh model instance; runs verify and rethrows its failure if any.
RunResult replay(ModelRun run, const std::string& schedule,
                 bool hook_test_points = false);

}  // namespace ullsnn::sched
