#include "src/sched/sched.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

namespace ullsnn::sched {

std::atomic<TestPointFn> g_test_point{nullptr};

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string format_schedule(const std::vector<int>& choices) {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(choices[i]);
  }
  return out;
}

std::vector<int> parse_schedule(const std::string& schedule) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < schedule.size()) {
    std::size_t end = schedule.find('.', pos);
    if (end == std::string::npos) end = schedule.size();
    if (end == pos) {
      throw std::invalid_argument("parse_schedule: empty component in \"" +
                                  schedule + "\"");
    }
    out.push_back(std::stoi(schedule.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

ScheduleFailure::ScheduleFailure(std::string schedule, const std::string& what)
    : std::runtime_error("[schedule " + schedule + "] " + what),
      schedule_(std::move(schedule)) {}

namespace {

constexpr int kSchedulerTurn = -1;

/// Shared handoff state for one run. Raw std::mutex on purpose: this is the
/// checker's own machinery, beneath the level the annotations describe, and
/// it must not recurse into any instrumented primitive.
struct RunState {
  std::mutex m;
  std::condition_variable cv;
  int current = kSchedulerTurn;  // whose turn it is (thread id or scheduler)
  std::vector<char> ready;       // thread reached its start barrier
  std::vector<char> done;        // thread finished its body
  // free_run: scheduling is over (abort or teardown); decision points stop
  // parking so every thread can run to completion and be joined.
  bool free_run = false;

  explicit RunState(std::size_t n) : ready(n, 0), done(n, 0) {}

  /// Park the calling thread until the scheduler grants it the next step.
  void yield(int id) {
    std::unique_lock<std::mutex> lock(m);
    if (free_run) return;
    current = kSchedulerTurn;
    cv.notify_all();
    cv.wait(lock, [&] { return current == id || free_run; });
  }
};

thread_local RunState* tls_state = nullptr;
thread_local int tls_id = -1;

void test_point_trampoline(const char* /*name*/) {
  if (tls_state != nullptr) tls_state->yield(tls_id);
}

}  // namespace

void yield_point(const char* /*name*/) {
  if (tls_state != nullptr) tls_state->yield(tls_id);
}

RunResult Scheduler::run(std::vector<std::function<void()>> bodies,
                         const RunOptions& opts) {
  RunResult result;
  const int n = static_cast<int>(bodies.size());
  if (n == 0) {
    result.schedule = format_schedule(result.choices);
    return result;
  }

  RunState state(static_cast<std::size_t>(n));
  if (opts.hook_test_points) {
    g_test_point.store(&test_point_trampoline, std::memory_order_relaxed);
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&state, i, body = std::move(bodies[static_cast<std::size_t>(i)])] {
      tls_state = &state;
      tls_id = i;
      {
        // Start barrier: every thread registers ready, then waits for its
        // first grant — thread 0 starting before thread 2 has spawned would
        // make the runnable set (and thus the schedule meaning) racy.
        std::unique_lock<std::mutex> lock(state.m);
        state.ready[static_cast<std::size_t>(i)] = 1;
        state.cv.notify_all();
        state.cv.wait(lock, [&] { return state.current == i || state.free_run; });
      }
      body();
      {
        std::unique_lock<std::mutex> lock(state.m);
        state.done[static_cast<std::size_t>(i)] = 1;
        if (state.current == i) state.current = kSchedulerTurn;
        state.cv.notify_all();
      }
      tls_state = nullptr;
      tls_id = -1;
    });
  }

  std::uint64_t rng = opts.seed;
  {
    std::unique_lock<std::mutex> lock(state.m);
    state.cv.wait(lock, [&] {
      return std::all_of(state.ready.begin(), state.ready.end(),
                         [](char r) { return r != 0; });
    });
    std::int64_t step = 0;
    std::vector<int> runnable;
    while (true) {
      runnable.clear();
      for (int i = 0; i < n; ++i) {
        if (state.done[static_cast<std::size_t>(i)] == 0) runnable.push_back(i);
      }
      if (runnable.empty()) break;
      if (step >= opts.max_steps) {
        result.completed = false;
        result.error = "max_steps (" + std::to_string(opts.max_steps) +
                       ") exceeded — bodies yield without terminating?";
        break;
      }
      const int options = static_cast<int>(runnable.size());
      int choice;
      if (step < static_cast<std::int64_t>(opts.forced.size())) {
        choice = std::clamp(opts.forced[static_cast<std::size_t>(step)], 0,
                            options - 1);
      } else if (opts.random_fallback) {
        choice = static_cast<int>(splitmix64(rng) %
                                  static_cast<std::uint64_t>(options));
      } else {
        choice = 0;  // leftmost: canonical base schedule for DFS enumeration
      }
      result.choices.push_back(choice);
      result.options.push_back(options);
      state.current = runnable[static_cast<std::size_t>(choice)];
      state.cv.notify_all();
      if (!state.cv.wait_for(lock, opts.grant_timeout,
                             [&] { return state.current == kSchedulerTurn; })) {
        result.completed = false;
        result.error =
            "thread " + std::to_string(state.current) +
            " did not reach a decision point within grant_timeout — model "
            "body blocked outside scheduler control (see model rules in "
            "sched.h)";
        break;
      }
      ++step;
    }
    // Teardown: release every thread from parking so join() terminates even
    // after an aborted run.
    state.free_run = true;
    state.cv.notify_all();
  }

  for (std::thread& t : threads) t.join();
  if (opts.hook_test_points) {
    g_test_point.store(nullptr, std::memory_order_relaxed);
  }
  result.schedule = format_schedule(result.choices);
  return result;
}

ExploreStats explore(const std::function<ModelRun()>& make_run,
                     const ExploreOptions& opts) {
  ExploreStats stats;
  std::set<std::string> seen;

  const auto execute = [&](const RunOptions& ro) {
    ModelRun model = make_run();
    RunResult r = Scheduler::run(std::move(model.bodies), ro);
    ++stats.runs;
    seen.insert(r.schedule);
    if (!r.completed) throw ScheduleFailure(r.schedule, r.error);
    if (model.verify) {
      try {
        model.verify();
      } catch (const ScheduleFailure&) {
        throw;
      } catch (const std::exception& e) {
        throw ScheduleFailure(r.schedule, e.what());
      }
    }
    return r;
  };

  // Phase 1 — exhaustive DFS over choice prefixes. The next schedule is the
  // current one with its rightmost incrementable choice bumped and the tail
  // dropped (the tail re-derives as leftmost-0s), so schedules enumerate in
  // lexicographic order and never repeat.
  RunOptions ro;
  ro.hook_test_points = opts.hook_test_points;
  ro.max_steps = opts.max_steps;
  bool more = true;
  while (more && stats.runs < opts.max_exhaustive_runs) {
    const RunResult r = execute(ro);
    more = false;
    for (std::size_t i = r.choices.size(); i-- > 0;) {
      if (r.choices[i] + 1 < r.options[i]) {
        ro.forced.assign(r.choices.begin(),
                         r.choices.begin() + static_cast<std::ptrdiff_t>(i));
        ro.forced.push_back(r.choices[i] + 1);
        more = true;
        break;
      }
    }
  }
  stats.exhausted = !more;

  // Phase 2 — seeded random tails for trees bigger than the budget.
  RunOptions rr;
  rr.hook_test_points = opts.hook_test_points;
  rr.max_steps = opts.max_steps;
  rr.random_fallback = true;
  std::uint64_t seed_stream = opts.seed;
  for (std::int64_t i = 0; i < opts.random_runs; ++i) {
    rr.seed = splitmix64(seed_stream);
    execute(rr);
  }

  stats.distinct = static_cast<std::int64_t>(seen.size());
  return stats;
}

RunResult replay(ModelRun run, const std::string& schedule,
                 bool hook_test_points) {
  RunOptions ro;
  ro.forced = parse_schedule(schedule);
  ro.hook_test_points = hook_test_points;
  RunResult r = Scheduler::run(std::move(run.bodies), ro);
  if (!r.completed) throw ScheduleFailure(r.schedule, r.error);
  if (run.verify) {
    try {
      run.verify();
    } catch (const ScheduleFailure&) {
      throw;
    } catch (const std::exception& e) {
      throw ScheduleFailure(r.schedule, e.what());
    }
  }
  return r;
}

}  // namespace ullsnn::sched
