// Capability-annotated mutex primitives for Clang thread-safety analysis.
//
// std::mutex under libstdc++ carries no capability attribute, so fields
// cannot be GUARDED_BY it — the analysis rejects the annotation itself.
// These thin wrappers attach the attributes while delegating every
// operation to the standard primitives, so the runtime behavior (and TSan's
// view of it) is exactly std::mutex / std::condition_variable_any:
//
//   Mutex      CAPABILITY("mutex") wrapper over std::mutex.
//   MutexLock  SCOPED_CAPABILITY lock_guard equivalent.
//   CondVar    condition-variable whose waits REQUIRE the mutex, built on
//              std::condition_variable_any.
//
// CondVar deliberately has no predicate-taking wait: a predicate lambda is
// analyzed as a separate function that cannot see the held capability, so
// every GUARDED_BY access inside it would (rightly) warn. Write the loop
// explicitly instead — the analysis then proves the predicate reads are
// made under the lock:
//
//   MutexLock lock(mu_);
//   while (!closed_ && items_.empty()) ready_.wait(mu_);
//
// From the analysis' point of view the capability is held across wait()
// (the wait releases and reacquires it internally, net zero), which matches
// the caller-visible contract of a condition-variable wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace ullsnn {

/// Annotated exclusive mutex. Use MutexLock for scoped holds; lock()/unlock()
/// exist for the rare manual pattern and for CondVar's internal adapter.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard equivalent) that informs the analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Callers must hold the mutex across every
/// wait (enforced by REQUIRES); notify_* need no lock, matching std::.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Block until notified. Spurious wakeups happen; always re-check the
  /// predicate in a loop.
  void wait(Mutex& mu) REQUIRES(mu) {
    LockAdapter adapter(mu);
    cv_.wait(adapter);
  }

  /// Block until notified or `deadline`; std::cv_status::timeout on expiry.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    LockAdapter adapter(mu);
    return cv_.wait_until(adapter, deadline);
  }

  /// Block until notified or `timeout` elapses.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    LockAdapter adapter(mu);
    return cv_.wait_for(adapter, timeout);
  }

 private:
  /// BasicLockable view of an already-held Mutex for condition_variable_any.
  /// The wait's internal unlock/relock is invisible to the analysis on
  /// purpose: the capability is held on entry and on exit, which is the
  /// contract the caller reasons about.
  class LockAdapter {
   public:
    explicit LockAdapter(Mutex& mu) : mu_(mu) {}
    // NO_THREAD_SAFETY_ANALYSIS: transient release inside the wait; the
    // caller-visible hold state is unchanged.
    void lock() NO_THREAD_SAFETY_ANALYSIS { mu_.mu_.lock(); }
    void unlock() NO_THREAD_SAFETY_ANALYSIS { mu_.mu_.unlock(); }

   private:
    Mutex& mu_;
  };

  std::condition_variable_any cv_;
};

}  // namespace ullsnn
