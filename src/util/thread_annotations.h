// Clang thread-safety-analysis attribute macros.
//
// These annotations turn the repo's concurrency contracts — "items_ is
// guarded by mu_", "note() must be called with the breaker lock held" —
// into statically checked facts: a Clang build with -Wthread-safety (the
// ULLSNN_THREAD_SAFETY CMake option, enforced as -Werror=thread-safety in
// CI) rejects any access to a GUARDED_BY field outside its mutex and any
// call to a REQUIRES function without the capability held. On GCC (which
// has no capability analysis) every macro expands to nothing, so the
// annotations are free documentation there.
//
// The macro set mirrors the naming in the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Use them through
// the annotated primitives in src/util/mutex.h — std::mutex itself carries
// no capability attribute under libstdc++, so GUARDED_BY(some_std_mutex)
// would be rejected by the analysis.
//
// Conventions (see docs/concurrency.md):
//   * every mutex-protected member is GUARDED_BY its mutex;
//   * private "_locked" helpers are REQUIRES(mu_) instead of re-locking;
//   * atomics are NOT annotated — the analysis has no ordering model; each
//     atomic site instead carries a one-line memory_order justification.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a capability (lockable) type; `x` is the capability
/// kind shown in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding capability `x`.
#define GUARDED_BY(x) ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by capability `x`.
#define PT_GUARDED_BY(x) ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations (checked under -Wthread-safety-beta only;
/// harmless documentation otherwise).
#define ACQUIRED_BEFORE(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function precondition: the listed capabilities must be held on entry
/// (and are still held on exit).
#define REQUIRES(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the listed capabilities (empty list on a
/// SCOPED_CAPABILITY member means "the scoped object's capabilities").
#define ACQUIRE(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function attempts the capability; first argument is the return value
/// that signals success, e.g. TRY_ACQUIRE(true).
#define TRY_ACQUIRE(...) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking public APIs).
#define EXCLUDES(...) ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// trust the caller from this point on).
#define ASSERT_CAPABILITY(x) \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the capability protecting its result.
#define RETURN_CAPABILITY(x) ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disable the analysis for one function body. Every use
/// must carry a comment explaining why the analysis cannot see the truth.
#define NO_THREAD_SAFETY_ANALYSIS \
  ULLSNN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
