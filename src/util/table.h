// Console table and CSV emitters used by the benchmark harnesses to print
// the paper's tables/figure series in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace ullsnn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  /// Engineering notation with a unit, e.g. "3.20e+09 FLOPs".
  static std::string fmt_sci(double v, const std::string& unit, int precision = 2);

  /// Render with box-drawing separators to stdout.
  void print(const std::string& title = "") const;

  /// Write as CSV (headers + rows) to `path`. A non-empty `comment` (possibly
  /// multi-line, e.g. the obs::build_info_comment() provenance stamp) is
  /// emitted first, each line prefixed "# ". Throws on I/O failure.
  void write_csv(const std::string& path, const std::string& comment = "") const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ullsnn
