// Binary checkpoint format for trained networks: a flat dictionary of named
// tensors. Lets examples/benches train once and reuse weights across stages
// (DNN training -> conversion -> SGL fine-tuning).
//
// File layout (little-endian):
//   magic "ULSN" | u32 version | u64 count |
//   count x { u32 name_len | name bytes | u32 rank | i64 dims... | f32 data... }
#pragma once

#include <map>
#include <string>

#include "src/tensor/tensor.h"

namespace ullsnn {

using TensorDict = std::map<std::string, Tensor>;

/// Write all tensors to `path`. Throws std::runtime_error on I/O failure.
void save_tensors(const TensorDict& tensors, const std::string& path);

/// Read a checkpoint written by save_tensors. Throws on malformed input.
TensorDict load_tensors(const std::string& path);

}  // namespace ullsnn
