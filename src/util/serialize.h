// Binary checkpoint format for trained networks: a flat dictionary of named
// tensors. Lets examples/benches train once and reuse weights across stages
// (DNN training -> conversion -> SGL fine-tuning), and backs the pipeline's
// crash-safe stage checkpoints (docs/robustness.md).
//
// v2 layout (little-endian), written by save_tensors:
//   magic "ULSN" | u32 version=2 | u32 crc32(payload) | u64 payload_size |
//   payload: u64 count |
//            count x { u32 name_len | name bytes | u32 rank | i64 dims... |
//                      f32 data... }
// v1 files (no crc/payload_size header fields) are still readable.
//
// Writes are atomic: data goes to "<path>.tmp" and is renamed over `path`
// only after a successful flush, so a crash mid-write never leaves a
// truncated checkpoint under the real name. Loads verify the CRC (v2) and
// sanity-bound every header field before allocating, so any corrupt or
// truncated file is rejected with std::runtime_error instead of crashing or
// returning garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "src/tensor/tensor.h"

namespace ullsnn {

using TensorDict = std::map<std::string, Tensor>;

/// Write all tensors to `path` (v2, CRC-checked, atomic tmp+rename).
/// Throws std::runtime_error on I/O failure.
void save_tensors(const TensorDict& tensors, const std::string& path);

/// Read a checkpoint written by save_tensors (v2) or a pre-CRC v1 file.
/// Throws std::runtime_error on any malformed, truncated, or corrupt input.
TensorDict load_tensors(const std::string& path);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `n` bytes. Pass a previous
/// return value as `seed` to checksum incrementally; 0 starts a new sum.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Write `n` bytes to `path` via "<path>.tmp" + rename (all-or-nothing).
void atomic_write_file(const std::string& path, const void* data, std::size_t n);

}  // namespace ullsnn
