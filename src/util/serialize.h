// Binary checkpoint format for trained networks: a flat dictionary of named
// tensors. Lets examples/benches train once and reuse weights across stages
// (DNN training -> conversion -> SGL fine-tuning), and backs the pipeline's
// crash-safe stage checkpoints (docs/robustness.md).
//
// v2 layout (little-endian), written by save_tensors:
//   magic "ULSN" | u32 version=2 | u32 crc32(payload) | u64 payload_size |
//   payload: u64 count |
//            count x { u32 name_len | name bytes | u32 rank | i64 dims... |
//                      f32 data... }
// v1 files (no crc/payload_size header fields) are REJECTED with a clear
// deprecation error: without a CRC, silent corruption can deserialize into
// plausible garbage, which serving cannot tolerate. Re-save with any v2
// build to upgrade.
//
// Writes are atomic AND durable: data goes to "<path>.tmp", is fsync'd, and
// only then renamed over `path` (followed by a directory fsync), so a crash
// at any instant leaves either the complete old file or the complete new
// one — never a truncated checkpoint under the real name. Loads verify the CRC (v2) and
// sanity-bound every header field before allocating, so any corrupt or
// truncated file is rejected with std::runtime_error instead of crashing or
// returning garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "src/tensor/tensor.h"

namespace ullsnn {

using TensorDict = std::map<std::string, Tensor>;

/// Write all tensors to `path` (v2, CRC-checked, atomic tmp+rename).
/// Throws std::runtime_error on I/O failure.
void save_tensors(const TensorDict& tensors, const std::string& path);

/// Read a checkpoint written by save_tensors (v2). Throws std::runtime_error
/// on any malformed, truncated, corrupt, or deprecated-v1 input.
TensorDict load_tensors(const std::string& path);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `n` bytes. Pass a previous
/// return value as `seed` to checksum incrementally; 0 starts a new sum.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Write `n` bytes to `path` via "<path>.tmp" + fsync + rename + directory
/// fsync (all-or-nothing, durable at the rename commit point).
void atomic_write_file(const std::string& path, const void* data, std::size_t n);

}  // namespace ullsnn
