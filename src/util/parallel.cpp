#include "src/util/parallel.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace ullsnn {

ThreadPool::ThreadPool(std::int64_t threads) {
  if (threads < 0) throw std::invalid_argument("ThreadPool: negative thread count");
  if (threads <= 1) return;  // inline execution, no workers
  workers_.reserve(static_cast<std::size_t>(threads));
  for (std::int64_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::int64_t)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && generation_ == seen_generation) wake_.wait(mutex_);
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      ++active_;
    }
    while (true) {
      std::int64_t index;
      {
        MutexLock lock(mutex_);
        if (next_index_ >= job_count_) break;
        index = next_index_++;
      }
      try {
        (*job)(index);
      } catch (...) {
        record_error(std::current_exception());
      }
    }
    {
      MutexLock lock(mutex_);
      --active_;
      if (active_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::record_error(std::exception_ptr error) {
  MutexLock lock(mutex_);
  if (!job_error_) job_error_ = std::move(error);
  next_index_ = job_count_;  // stop handing out further iterations
}

void ThreadPool::run(std::int64_t count, const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_index_ = 0;
    job_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  // The calling thread also works, then waits for the stragglers.
  while (true) {
    std::int64_t index;
    {
      MutexLock lock(mutex_);
      if (next_index_ >= job_count_) break;
      index = next_index_++;
    }
    try {
      fn(index);
    } catch (...) {
      record_error(std::current_exception());
    }
  }
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (active_ != 0) done_.wait(mutex_);
    job_ = nullptr;
    error = std::exchange(job_error_, nullptr);
  }
  // Rethrow outside the lock so the pool stays usable from a catch block.
  if (error) std::rethrow_exception(error);
}

namespace {
std::unique_ptr<ThreadPool>& global_pool() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::int64_t& global_threads() {
  static std::int64_t threads = 1;
  return threads;
}
}  // namespace

void set_num_threads(std::int64_t threads) {
  if (threads <= 0) throw std::invalid_argument("set_num_threads: must be positive");
  global_threads() = threads;
  global_pool() = threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
}

std::int64_t num_threads() { return global_threads(); }

void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& fn) {
  ThreadPool* pool = global_pool().get();
  if (pool == nullptr) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->run(count, fn);
}

}  // namespace ullsnn
