// Minimal thread pool and parallel_for for data-parallel batch work.
//
// The reference benches run single-core (DESIGN.md), so everything defaults
// to serial execution; callers opt in via set_num_threads(n). Parallelism is
// exposed at the batch-sample level (conv2d_forward's per-sample im2col+GEMM
// loop), which is embarrassingly parallel and keeps all kernels bitwise
// deterministic regardless of thread count.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"

namespace ullsnn {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 or 1 => no workers; run() executes inline).
  explicit ThreadPool(std::int64_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::int64_t thread_count() const {
    return static_cast<std::int64_t>(workers_.size());
  }

  /// Run fn(i) for i in [0, count), blocking until all iterations finish.
  /// Iterations are distributed dynamically (atomic counter), so uneven
  /// per-iteration cost balances automatically.
  ///
  /// Exceptions: if any iteration throws, the FIRST exception is captured,
  /// no further indices are handed out (in-flight iterations still finish),
  /// and the exception is rethrown on the calling thread once every worker
  /// has drained. The pool stays usable afterwards. Iterations past the
  /// throwing index may or may not have run.
  void run(std::int64_t count, const std::function<void(std::int64_t)>& fn);

 private:
  void worker_loop();
  /// Record the first failure and stop handing out indices (takes mutex_
  /// internally).
  void record_error(std::exception_ptr error);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_;
  CondVar done_;
  const std::function<void(std::int64_t)>* job_ GUARDED_BY(mutex_) = nullptr;
  std::int64_t job_count_ GUARDED_BY(mutex_) = 0;
  std::int64_t next_index_ GUARDED_BY(mutex_) = 0;
  std::int64_t active_ GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::exception_ptr job_error_ GUARDED_BY(mutex_);
};

/// Process-wide worker count for library kernels (default 1 = serial).
void set_num_threads(std::int64_t threads);
std::int64_t num_threads();

/// Run fn(i) for i in [0, count) on the process-wide pool (inline when the
/// pool is serial or count == 1).
void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& fn);

}  // namespace ullsnn
