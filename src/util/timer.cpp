#include "src/util/timer.h"

namespace ullsnn {

double Timer::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace ullsnn
