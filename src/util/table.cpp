#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace ullsnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::fmt_sci(double v, const std::string& unit, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  std::string s = buf;
  if (!unit.empty()) s += " " + unit;
  return s;
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto hline = [&] {
    std::cout << '+';
    for (std::size_t w : widths) std::cout << std::string(w + 2, '-') << '+';
    std::cout << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::cout << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    std::cout << '\n';
  };
  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  hline();
  print_row(headers_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

void Table::write_csv(const std::string& path, const std::string& comment) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out << "# " << line << '\n';
  }
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) out << '"';
      out << row[c];
      if (quote) out << '"';
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  if (!out) throw std::runtime_error("Table::write_csv: write failed for " + path);
}

}  // namespace ullsnn
