// Thread-safe errno -> message conversion.
//
// std::strerror returns a pointer into internal static storage and is not
// required to be reentrant (clang-tidy: concurrency-mt-unsafe), which
// matters here: the serving endpoint and the artifact loader both format
// system errors from concurrent threads. strerror_r is the reentrant form,
// but glibc ships the GNU variant (returns char*, may ignore the buffer)
// unless strict POSIX macros are set, while musl/POSIX return int. The
// overload pair below dispatches on the actual return type, so both ABIs
// compile without feature-macro contortions.
#pragma once

#include <cstring>
#include <string>

namespace ullsnn {

namespace detail {
// XSI strerror_r: int return, message written into the caller's buffer.
inline const char* errno_describe(int /*rc*/, const char* buf) { return buf; }
// GNU strerror_r: returns the message (buffer used only for unknown errnos).
inline const char* errno_describe(const char* msg, const char* /*buf*/) {
  return msg;
}
}  // namespace detail

/// Reentrant equivalent of std::strerror(err).
inline std::string errno_string(int err) {
  char buf[256];
  buf[0] = '\0';
  return detail::errno_describe(::strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace ullsnn
