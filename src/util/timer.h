// Wall-clock timing helpers for the simulation-time benches (Fig. 3).
#pragma once

#include <chrono>
#include <cstdint>

namespace ullsnn {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const;
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates durations across start/stop pairs (e.g. per-phase epoch time).
class StopWatch {
 public:
  /// Begin (or re-begin) a timed interval. Calling start() while already
  /// running banks the in-flight elapsed time before restarting, so no
  /// interval is ever silently discarded.
  void start() {
    if (running_) total_ += timer_.seconds();
    running_ = true;
    timer_.reset();
  }
  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace ullsnn
