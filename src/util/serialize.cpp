#include "src/util/serialize.h"

#include "src/util/errno_string.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace ullsnn {

namespace {
constexpr char kMagic[4] = {'U', 'L', 'S', 'N'};
constexpr std::uint32_t kVersion = 2;

// Bounds on header fields. A corrupt length field must not translate into a
// multi-gigabyte allocation before the mismatch is even noticed.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxRank = 8;

template <typename T>
void append_pod(std::vector<char>& buf, const T& v) {
  const char* bytes = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), bytes, bytes + sizeof v);
}

/// Bounds-checked cursor over an in-memory file image. Every read throws on
/// overrun, so truncated files fail deterministically at the first missing
/// byte instead of reading past the buffer.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  template <typename T>
  T read_pod() {
    T v{};
    read_bytes(&v, sizeof v);
    return v;
  }

  void read_bytes(void* dst, std::size_t n) {
    if (n > remaining()) {
      throw std::runtime_error("load_tensors: truncated file " + path_);
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  const char* here() const { return data_ + pos_; }
  const std::string& path() const { return path_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string path_;
};

TensorDict parse_entries(Cursor& cur) {
  const auto count = cur.read_pod<std::uint64_t>();
  TensorDict dict;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = cur.read_pod<std::uint32_t>();
    if (name_len > kMaxNameLen) {
      throw std::runtime_error("load_tensors: tensor name length " +
                               std::to_string(name_len) + " exceeds bound in " +
                               cur.path());
    }
    std::string name(name_len, '\0');
    cur.read_bytes(name.data(), name_len);
    const auto rank = cur.read_pod<std::uint32_t>();
    if (rank > kMaxRank) {
      throw std::runtime_error("load_tensors: tensor rank " + std::to_string(rank) +
                               " exceeds bound in " + cur.path());
    }
    Shape shape(rank);
    std::uint64_t numel = 1;
    for (auto& d : shape) {
      d = cur.read_pod<std::int64_t>();
      if (d < 0) {
        throw std::runtime_error("load_tensors: negative dimension in " + cur.path());
      }
      numel *= static_cast<std::uint64_t>(d);
      // The data for this tensor must fit in what is left of the file; a
      // corrupt dim cannot request more memory than the file could back.
      if (numel * sizeof(float) > cur.remaining()) {
        throw std::runtime_error("load_tensors: tensor '" + name +
                                 "' larger than remaining bytes in " + cur.path());
      }
    }
    Tensor t(shape);
    cur.read_bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
    dict.emplace(std::move(name), std::move(t));
  }
  if (cur.remaining() != 0) {
    throw std::runtime_error("load_tensors: trailing bytes after last tensor in " +
                             cur.path());
  }
  return dict;
}
}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

void atomic_write_file(const std::string& path, const void* data, std::size_t n) {
  // write-to-temp + fsync + rename (+ directory fsync): after a crash at any
  // instant, `path` holds either the complete old bytes or the complete new
  // bytes — never a prefix. The fsync before rename is what makes the rename
  // a commit point instead of a reordering hazard.
  const std::string tmp = path + ".tmp";
  const auto raise = [&tmp](const std::string& op) {
    const int err = errno;
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("atomic_write_file: " + op + " failed for " + tmp +
                             ": " + errno_string(err));
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("atomic_write_file: cannot open " + tmp + ": " +
                             errno_string(errno));
  }
  const char* p = static_cast<const char*>(data);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      raise("write");
    }
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    raise("fsync");
  }
  if (::close(fd) != 0) raise("close");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed");
  }
  // Persist the rename itself: fsync the containing directory (best-effort —
  // some filesystems refuse O_RDONLY directory fsync; the data is safe either
  // way, only the name change could be replayed).
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void save_tensors(const TensorDict& tensors, const std::string& path) {
  std::vector<char> payload;
  append_pod(payload, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    append_pod(payload, static_cast<std::uint32_t>(name.size()));
    payload.insert(payload.end(), name.begin(), name.end());
    append_pod(payload, static_cast<std::uint32_t>(tensor.rank()));
    for (std::int64_t d : tensor.shape()) append_pod(payload, d);
    const char* bytes = reinterpret_cast<const char*>(tensor.data());
    payload.insert(payload.end(), bytes,
                   bytes + static_cast<std::size_t>(tensor.numel()) * sizeof(float));
  }
  std::vector<char> file;
  file.reserve(payload.size() + 20);
  file.insert(file.end(), kMagic, kMagic + sizeof kMagic);
  append_pod(file, kVersion);
  append_pod(file, crc32(payload.data(), payload.size()));
  append_pod(file, static_cast<std::uint64_t>(payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());
  atomic_write_file(path, file.data(), file.size());
}

TensorDict load_tensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("load_tensors: read failed for " + path);
  }
  Cursor cur(bytes.data(), bytes.size(), path);
  char magic[4];
  cur.read_bytes(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("load_tensors: bad magic in " + path);
  }
  const auto version = cur.read_pod<std::uint32_t>();
  if (version == 1) {
    // v1 predates the payload CRC, so a silently corrupt v1 checkpoint can
    // deserialize into plausible garbage. Serving artifacts made that risk
    // unacceptable: re-save with save_tensors (any >= v2 build) to upgrade.
    throw std::runtime_error(
        "load_tensors: " + path +
        " is a deprecated v1 (pre-CRC) checkpoint and can no longer be "
        "loaded; re-save it with a v2-capable build to add integrity checks");
  }
  if (version != kVersion) {
    throw std::runtime_error("load_tensors: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  const auto stored_crc = cur.read_pod<std::uint32_t>();
  const auto payload_size = cur.read_pod<std::uint64_t>();
  if (payload_size != cur.remaining()) {
    throw std::runtime_error("load_tensors: payload size mismatch in " + path +
                             " (header says " + std::to_string(payload_size) +
                             ", file has " + std::to_string(cur.remaining()) + ")");
  }
  const std::uint32_t actual_crc = crc32(cur.here(), cur.remaining());
  if (actual_crc != stored_crc) {
    throw std::runtime_error("load_tensors: CRC mismatch in " + path +
                             " (checkpoint is corrupt)");
  }
  return parse_entries(cur);
}

}  // namespace ullsnn
