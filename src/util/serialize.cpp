#include "src/util/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ullsnn {

namespace {
constexpr char kMagic[4] = {'U', 'L', 'S', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("load_tensors: truncated file");
  return v;
}
}  // namespace

void save_tensors(const TensorDict& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensors: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint32_t>(tensor.rank()));
    for (std::int64_t d : tensor.shape()) write_pod(out, d);
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_tensors: write failed for " + path);
}

TensorDict load_tensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("load_tensors: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_tensors: unsupported version " + std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(in);
  TensorDict dict;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(in);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(in);
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_tensors: truncated tensor data in " + path);
    dict.emplace(std::move(name), std::move(t));
  }
  return dict;
}

}  // namespace ullsnn
