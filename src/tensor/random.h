// Deterministic RNG and weight initializers.
//
// Uses xoshiro256** seeded via SplitMix64 — fast, reproducible across
// platforms (unlike std::normal_distribution whose output is
// implementation-defined), which matters because benches assert result
// *shapes* against recorded runs.
#pragma once

#include <cstdint>

#include "src/tensor/tensor.h"

namespace ullsnn {

/// Complete serializable Rng state: the four xoshiro words plus the Box–Muller
/// cache. Round-tripping through state()/set_state() reproduces the stream
/// bitwise, which is what makes checkpoint/resume of a training run
/// deterministic (robust::TrainCheckpointer).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  std::uint64_t has_cached_normal = 0;
  std::uint64_t cached_normal_bits = 0;  // float payload, zero-extended
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  float uniform();
  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal via Box–Muller (cached second value).
  float normal();
  float normal(float mean, float stddev);
  /// Uniform integer in [0, n). Requires n > 0.
  std::int64_t uniform_int(std::int64_t n);
  /// Bernoulli(p) as a bool.
  bool bernoulli(float p);

  /// Fork a statistically independent stream (for per-worker determinism).
  Rng split();

  /// Snapshot / restore the full generator state (bitwise round-trip).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0F;
};

/// Fisher–Yates shuffle of an index vector.
void shuffle(std::vector<std::int64_t>& indices, Rng& rng);

// ---- initializers ----

/// He/Kaiming normal: stddev = sqrt(2 / fan_in). The paper's networks are
/// ReLU-family, so Kaiming is the right default.
void kaiming_normal(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

/// Fill with N(mean, stddev).
void normal_fill(Tensor& w, float mean, float stddev, Rng& rng);

/// Fill with U[lo, hi).
void uniform_fill(Tensor& w, float lo, float hi, Rng& rng);

}  // namespace ullsnn
