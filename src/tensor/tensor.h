// Dense float32 tensor: the numeric substrate for the DNN/SNN libraries.
//
// Design: a Tensor owns a contiguous row-major buffer plus a shape vector.
// Indices are signed 64-bit (Core Guidelines ES.102/ES.107). There are no
// strided views; reshape is O(1) metadata-only, everything else copies.
// This keeps aliasing trivially correct, which matters far more here than
// saving copies: all hot loops (conv, matmul) run on raw pointers anyway.
//
// Borrowed tensors: Tensor::borrow wraps external immutable memory (an
// mmap'd model artifact) without copying. A borrowed tensor reads through
// the external pointer; mutable access via data()/vec() or any bulk mutator
// (fill, apply, compound assignment) first detaches — copies the data into
// owned storage — so value semantics are preserved and shared artifact
// pages can never be written through a Tensor. The per-element mutable
// accessors (at, operator[]) are the one exception: they index owned
// storage directly to keep the training inner loops branch-free, so code
// mutating a possibly-borrowed tensor element-wise must detach first (see
// the accessor comment below). Copying a borrowed tensor copies only the
// pointer (still borrowed), which is what makes per-worker replica
// construction O(layers) instead of O(parameters). The borrowed memory must
// outlive every borrowing tensor; the artifact layer enforces this by
// pinning the mapping with shared_ptr ownership.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace ullsnn {

using Shape = std::vector<std::int64_t>;

/// Number of elements a shape describes. Throws on negative extents.
std::int64_t shape_numel(const Shape& shape);

/// Human-readable form, e.g. "[2, 3, 32, 32]".
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor: rank 0, no elements.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting `values` (size must equal shape_numel(shape)).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// 1-D tensor from an initializer list; convenient in tests.
  static Tensor of(std::initializer_list<float> values);

  /// Non-owning view over external immutable memory (shape_numel(shape)
  /// floats at `data`). The memory must outlive the tensor and every copy of
  /// it; reads go straight through the pointer, mutation detaches first.
  static Tensor borrow(Shape shape, const float* data);

  /// True while this tensor reads through an external borrowed pointer.
  bool borrowed() const { return borrow_ != nullptr; }
  /// Copy borrowed data into owned storage; no-op when already owned.
  void detach();

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t numel() const {
    return borrow_ != nullptr ? borrow_numel_
                              : static_cast<std::int64_t>(data_.size());
  }
  bool empty() const { return numel() == 0; }

  /// Extent of dimension `dim` (supports negative Python-style indices).
  std::int64_t dim(std::int64_t d) const;

  float* data() {
    if (borrow_ != nullptr) detach();
    return data_.data();
  }
  const float* data() const { return borrow_ != nullptr ? borrow_ : data_.data(); }
  std::vector<float>& vec() {
    if (borrow_ != nullptr) detach();
    return data_;
  }
  const std::vector<float>& vec() const;  // owned tensors only (throws if borrowed)

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data()[static_cast<std::size_t>(i)]; }

  /// Multi-dimensional accessors (bounds-checked in debug builds only on the
  /// flat index; shape agreement is the caller's responsibility). The
  /// mutable overloads index owned storage directly — they sit inside the
  /// per-element training loops (optimizer updates, neuron steps), where a
  /// borrow check measurably perturbs codegen — so callers mutating a
  /// possibly-borrowed tensor must detach first via data()/vec()/detach();
  /// every bulk mutator (fill, apply, operator+= ...) already does.
  float& at(std::int64_t i0) { return data_[static_cast<std::size_t>(i0)]; }
  float& at(std::int64_t i0, std::int64_t i1) {
    return data_[static_cast<std::size_t>(i0 * shape_[1] + i1)];
  }
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
    return data_[static_cast<std::size_t>((i0 * shape_[1] + i1) * shape_[2] + i2)];
  }
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3) {
    return data_[static_cast<std::size_t>(
        ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3)];
  }
  float at(std::int64_t i0) const { return data()[static_cast<std::size_t>(i0)]; }
  float at(std::int64_t i0, std::int64_t i1) const {
    return data()[static_cast<std::size_t>(i0 * shape_[1] + i1)];
  }
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
    return data()[static_cast<std::size_t>((i0 * shape_[1] + i1) * shape_[2] + i2)];
  }
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3) const {
    return data()[static_cast<std::size_t>(
        ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3)];
  }

  /// O(1) metadata change; total element count must be preserved.
  /// At most one extent may be -1 (inferred).
  Tensor reshape(Shape new_shape) const&;
  Tensor reshape(Shape new_shape) &&;

  /// Fill every element with `value`.
  void fill(float value);

  /// In-place elementwise transform.
  void apply(const std::function<float(float)>& f);

  // ---- elementwise arithmetic (shapes must match exactly) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(const Tensor& rhs);
  Tensor& operator+=(float rhs);
  Tensor& operator*=(float rhs);
  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
  friend Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

  // ---- reductions ----
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties). Requires numel() > 0.
  std::int64_t argmax() const;
  /// Square root of mean of squares; 0 for empty tensors.
  float rms() const;
  /// Count of elements for which `pred` holds.
  std::int64_t count(const std::function<bool(float)>& pred) const;

  /// True iff shapes match and elements are within `tol` of each other.
  bool allclose(const Tensor& other, float tol = 1e-5F) const;

 private:
  Shape shape_;
  std::vector<float> data_;
  // Borrowed mode: non-null while reading through external memory. data_ is
  // empty until the first mutable access detaches.
  const float* borrow_ = nullptr;
  std::int64_t borrow_numel_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace ullsnn
