// AVX2+FMA tier: hand-written 6x16 fp32 micro-kernel (12 ymm accumulators,
// broadcast-FMA) and the 6x16 int8 kernel built from maddubs/madd pairs over
// the shared k-quad-interleaved panels (see gemm_kernels.h for the panel
// contract). This TU is compiled with -mavx2 -mfma regardless of the global
// -march, so the tier exists even in a generic x86-64 build; when the
// compiler cannot take those flags (non-x86 target) the stubs below keep the
// link whole and avx2_kernels_ready() reports the tier unavailable.
#include "src/tensor/gemm_kernels.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__GNUC__)
#define ULLSNN_HAVE_AVX2_TU 1
#include <immintrin.h>
#else
#define ULLSNN_HAVE_AVX2_TU 0
#endif

#include <cstring>

namespace ullsnn::detail {

#if ULLSNN_HAVE_AVX2_TU

bool avx2_kernels_ready() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

void micro_kernel_fp32_avx2(const float* ap, const float* bp, float* c,
                            std::int64_t kc, std::int64_t ldc,
                            std::int64_t rows, std::int64_t cols) {
  constexpr std::int64_t kNr = 16;
  __m256 acc[kMR][2];
  for (auto& row : acc) {
    row[0] = _mm256_setzero_ps();
    row[1] = _mm256_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNr + 8);
    const float* a = ap + kk * kMR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  if (rows == kMR && cols == kNr) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* ci = c + i * ldc;
      _mm256_storeu_ps(ci, _mm256_add_ps(_mm256_loadu_ps(ci), acc[i][0]));
      _mm256_storeu_ps(ci + 8, _mm256_add_ps(_mm256_loadu_ps(ci + 8), acc[i][1]));
    }
  } else {
    // Edge tile: spill the register tile (padded lanes computed on zeros)
    // and add back only the valid region.
    alignas(32) float tile[kMR][kNr];
    for (std::int64_t i = 0; i < kMR; ++i) {
      _mm256_store_ps(tile[i], acc[i][0]);
      _mm256_store_ps(tile[i] + 8, acc[i][1]);
    }
    for (std::int64_t i = 0; i < rows; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < cols; ++j) ci[j] += tile[i][j];
    }
  }
}

void micro_kernel_int8_avx2(const std::uint8_t* ap, const std::int8_t* bp,
                            std::int32_t* acc, std::int64_t kq) {
  // Per k-quad: broadcast 4 activation bytes per row, maddubs against the 4
  // weight bytes of each column (u8 x s8 -> pairwise i16 sums; activations
  // are quantized to [0,127] so the pair sums cannot saturate), then
  // madd(.,1) folds the i16 pairs into per-column i32 partials.
  __m256i acc0[kMR];
  __m256i acc1[kMR];
  for (std::int64_t i = 0; i < kMR; ++i) {
    acc0[i] = _mm256_setzero_si256();
    acc1[i] = _mm256_setzero_si256();
  }
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::int8_t* b = bp + q * kInt8Nr * 4;
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 32));
    const std::uint8_t* a = ap + q * kMR * 4;
    for (std::int64_t i = 0; i < kMR; ++i) {
      std::int32_t quad;
      std::memcpy(&quad, a + i * 4, sizeof(quad));
      const __m256i av = _mm256_set1_epi32(quad);
      acc0[i] = _mm256_add_epi32(acc0[i], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
      acc1[i] = _mm256_add_epi32(acc1[i], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kInt8Nr), acc0[i]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kInt8Nr + 8), acc1[i]);
  }
}

#else  // !ULLSNN_HAVE_AVX2_TU

bool avx2_kernels_ready() { return false; }

void micro_kernel_fp32_avx2(const float* ap, const float* bp, float* c,
                            std::int64_t kc, std::int64_t ldc,
                            std::int64_t rows, std::int64_t cols) {
  micro_kernel_fp32_scalar<16>(ap, bp, c, kc, ldc, rows, cols);
}

void micro_kernel_int8_avx2(const std::uint8_t* ap, const std::int8_t* bp,
                            std::int32_t* acc, std::int64_t kq) {
  micro_kernel_int8_scalar(ap, bp, acc, kq);
}

#endif  // ULLSNN_HAVE_AVX2_TU

}  // namespace ullsnn::detail
