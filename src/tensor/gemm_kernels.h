// Internal micro-kernel contract shared by the dispatch tiers (scalar, AVX2,
// AVX-512). Included only by the tensor/gemm* translation units and the
// dispatch selector — not part of the public API (use gemm.h / dispatch.h).
//
// fp32 contract: ap is a packed A panel [kc x kMR] (kMR values per k step),
// bp a packed B panel [kc x NR], both zero-padded on ragged edges; the kernel
// adds the MR x NR product tile into C (ldc row stride), writing only the
// `rows x cols` valid region. NR is a per-tier constant carried in the
// KernelPlan; PackedB panels are laid out for the plan that packed them.
//
// int8 contract: every tier shares one panel geometry (kInt8Nr columns,
// k-steps interleaved in groups of 4) so packed operands are tier-portable:
//   B panel: [ceil(kc/4)][kInt8Nr][4] int8 — for each group of 4 k steps, 4
//            consecutive weight bytes per output column (zero-padded past kc),
//            i.e. one 64-byte row per k-quad, loadable as one zmm / two ymm.
//   A panel: [ceil(kc/4)][kMR][4] uint8 — 4 consecutive quantized activation
//            bytes per row (zero-padded past kc and past the ragged row edge).
// The kernel writes the full kMR x kInt8Nr int32 product tile to `acc`
// (row-major, no accumulation across calls); the shared scalar epilogue in
// gemm.cpp applies the zero-point correction and the fused dequant into C, so
// int8 results are bitwise identical across tiers (int32 accumulation is
// exact; see docs/performance.md).
#pragma once

#include <cstdint>

namespace ullsnn::detail {

// Micro-tile geometry. MR x NR accumulators must fit the register file: with
// AVX-512 (32 zmm) a 6x32 tile uses 12 accumulator registers; with AVX2/SSE
// (16 ymm) 6x16 uses 12 ymm — the classic SGEMM shapes for each ISA.
constexpr std::int64_t kMR = 6;
// NR of the scalar tier. Matches what the pre-dispatch auto-vectorized kernel
// compiled to under -march=native, so the forced-scalar path reproduces the
// legacy kernel bit for bit (same tile shape, same packing, same loop).
#if defined(__AVX512F__)
constexpr std::int64_t kScalarNr = 32;
#else
constexpr std::int64_t kScalarNr = 16;
#endif
// Panel width shared by every int8 tier (16 i32 lanes = one zmm / two ymm).
constexpr std::int64_t kInt8Nr = 16;

// Cache blocking, shared by all tiers. The packed B panel (KC x NR strips)
// streams through L2; the packed A block (MC x KC) is reused across every NR
// strip of the current B block; C micro-tiles live in registers for the whole
// KC loop. kKC <= 256 also bounds the int8 epilogue: |acc - zp*colsum| <
// 2*256*127*127 < 2^24, so the int32 -> float conversion is exact.
constexpr std::int64_t kMC = 96;    // multiple of kMR
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 1024;  // multiple of every tier's NR

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

using MicroKernelFp32 = void (*)(const float* ap, const float* bp, float* c,
                                 std::int64_t kc, std::int64_t ldc,
                                 std::int64_t rows, std::int64_t cols);
// kq = ceil(kc/4) interleaved k-quads; acc is the kMR x kInt8Nr i32 tile.
using MicroKernelInt8 = void (*)(const std::uint8_t* ap, const std::int8_t* bp,
                                 std::int32_t* acc, std::int64_t kq);

/// Scalar fp32 tier: kc iterations of the rank-1 update on an MR x NR register
/// tile, auto-vectorized by the compiler under the build's -march flags. This
/// is the pre-dispatch kernel verbatim (tests/tensor/dispatch_test.cpp pins
/// the bitwise equivalence against an embedded copy of the legacy code).
template <std::int64_t NR>
void micro_kernel_fp32_scalar(const float* __restrict ap, const float* __restrict bp,
                              float* __restrict c, std::int64_t kc, std::int64_t ldc,
                              std::int64_t rows, std::int64_t cols) {
  float acc[kMR][NR] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* a = ap + kk * kMR;
    const float* b = bp + kk * NR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = a[i];
      for (std::int64_t j = 0; j < NR; ++j) acc[i][j] += av * b[j];
    }
  }
  if (rows == kMR && cols == NR) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < NR; ++j) ci[j] += acc[i][j];
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < cols; ++j) ci[j] += acc[i][j];
    }
  }
}

/// Scalar int8 tier over the shared interleaved panels (defined in gemm.cpp).
void micro_kernel_int8_scalar(const std::uint8_t* ap, const std::int8_t* bp,
                              std::int32_t* acc, std::int64_t kq);

// AVX2/FMA tier (gemm_avx2.cpp, compiled with -mavx2 -mfma). NR = 16.
// avx2_kernels_ready() folds together "this TU was compiled with the flags"
// and the runtime cpuid check, so the selector needs no flag bookkeeping.
bool avx2_kernels_ready();
void micro_kernel_fp32_avx2(const float* ap, const float* bp, float* c,
                            std::int64_t kc, std::int64_t ldc,
                            std::int64_t rows, std::int64_t cols);
void micro_kernel_int8_avx2(const std::uint8_t* ap, const std::int8_t* bp,
                            std::int32_t* acc, std::int64_t kq);

// AVX-512 tier (gemm_avx512.cpp, compiled with -mavx512{f,bw,vl}[,vnni]).
// NR = 32 for fp32; the int8 kernel uses vpdpbusd when the TU was compiled
// with VNNI (and the cpu has it), else a 512-bit maddubs sequence.
bool avx512_kernels_ready();
void micro_kernel_fp32_avx512(const float* ap, const float* bp, float* c,
                              std::int64_t kc, std::int64_t ldc,
                              std::int64_t rows, std::int64_t cols);
void micro_kernel_int8_avx512(const std::uint8_t* ap, const std::int8_t* bp,
                              std::int32_t* acc, std::int64_t kq);

}  // namespace ullsnn::detail
