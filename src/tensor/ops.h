// Hot numeric kernels: GEMM, im2col convolution (forward + both backward
// passes), and pooling. Everything is NCHW, float32, single-threaded but
// cache-blocked — this repo runs on one core by design (see DESIGN.md).
#pragma once

#include <cstdint>

#include "src/tensor/tensor.h"

namespace ullsnn {

/// C[M,N] = A[M,K] * B[K,N]. `accumulate` adds into C instead of overwriting.
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A^T[M,K] * B[K,N] where A is stored [K,M].
void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[M,K] * B^T[K,N] where B is stored [N,K].
void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

/// Tensor-level GEMM convenience: a is [M,K], b is [K,N], result [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);

struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;

  std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent + 2 * pad - kernel) / stride + 1;
  }
};

/// Unpack one sample's [C,H,W] image into columns [C*K*K, OH*OW].
void im2col(const float* img, float* cols, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec);

/// Inverse of im2col: accumulate columns back into the [C,H,W] image buffer.
/// The image buffer must be zeroed by the caller.
void col2im(const float* cols, float* img, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec);

/// Forward convolution. input [N,Cin,H,W], weight [Cout,Cin,K,K],
/// bias [Cout] (may be empty), output [N,Cout,OH,OW].
/// `scratch` must hold at least Cin*K*K*OH*OW floats.
void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, Tensor& output, const Conv2dSpec& spec,
                    std::vector<float>& scratch);

/// Gradients of conv2d. grad_output [N,Cout,OH,OW].
/// Accumulates into grad_weight/grad_bias; overwrites grad_input.
/// Pass nullptr grad_input to skip the input gradient (first layer).
void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor* grad_input,
                     Tensor& grad_weight, Tensor* grad_bias,
                     const Conv2dSpec& spec, std::vector<float>& scratch);

struct Pool2dSpec {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;

  std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent - kernel) / stride + 1;
  }
};

/// Max pooling; records the flat input index of each output's argmax in
/// `argmax` (same shape as output) for the backward pass.
void maxpool2d_forward(const Tensor& input, Tensor& output,
                       std::vector<std::int64_t>& argmax, const Pool2dSpec& spec);

/// Scatter grad_output to the recorded argmax positions. Overwrites grad_input.
void maxpool2d_backward(const Tensor& grad_output,
                        const std::vector<std::int64_t>& argmax,
                        Tensor& grad_input);

/// Average pooling.
void avgpool2d_forward(const Tensor& input, Tensor& output, const Pool2dSpec& spec);
void avgpool2d_backward(const Tensor& grad_output, Tensor& grad_input,
                        const Pool2dSpec& spec);

}  // namespace ullsnn
