// Hot numeric kernels: GEMM, im2row convolution (forward + both backward
// passes), pooling, and the sparsity-aware spike dispatch. Everything is
// NCHW, float32.
//
// The dense paths route through the cache-blocked, panel-packed GEMM in
// gemm.h (tiny shapes fall back to the retained naive kernels). Convolution
// packs the weight operand's panels once per call and reuses them across the
// batch-sample loop. Batch-level parallelism via the process-wide ThreadPool
// (util/parallel.h) is bitwise-deterministic at any thread count: samples
// write disjoint slices, and conv2d_backward reduces per-sample gradient
// partials in fixed index order. Scratch comes from the per-thread Arena
// (arena.h) — steady-state calls perform no heap allocation.
//
// The *_spiking entry points add a density-based dispatch for SNN inference:
// inputs below the density threshold take a row-compressed sparse kernel
// whose cost scales with the spike count, and the nonzero tally the dispatch
// scan produces is returned so layers get their activity accounting for free
// (no separate counting pass; see docs/performance.md).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/gemm.h"
#include "src/tensor/tensor.h"

namespace ullsnn {

/// C[M,N] = A[M,K] * B[K,N]. `accumulate` adds into C instead of overwriting.
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A^T[M,K] * B[K,N] where A is stored [K,M].
void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[M,K] * B^T[K,N] where B is stored [N,K].
void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate = false);

// Reference scalar kernels (the pre-blocking implementations), retained as
// the ground truth for the `ctest -L kernels` equivalence suite and as the
// small-shape fast path: below kNaiveGemmCutoff elements of work, packing
// overhead exceeds the blocked kernel's gain.
void matmul_naive(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, bool accumulate = false);
void matmul_at_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate = false);
void matmul_bt_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate = false);

constexpr std::int64_t kNaiveGemmCutoff = 32 * 32 * 32;  // m*k*n MACs

/// Tensor-level GEMM convenience: a is [M,K], b is [K,N], result [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);

struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;

  std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent + 2 * pad - kernel) / stride + 1;
  }
};

/// Unpack one sample's [C,H,W] image into columns [C*K*K, OH*OW].
void im2col(const float* img, float* cols, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec);

/// Inverse of im2col: accumulate columns back into the [C,H,W] image buffer.
/// The image buffer must be zeroed by the caller.
void col2im(const float* cols, float* img, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec);

/// im2col's transpose: unpack one sample's [C,H,W] image into rows
/// [OH*OW, C*K*K] — one receptive field per row. This is the layout the
/// blocked conv path uses (GEMM against the packed [C*K*K, Cout] weight).
void im2row(const float* img, float* rows, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec);

/// Inverse of im2row: accumulate rows back into the [C,H,W] image buffer.
/// The image buffer must be zeroed by the caller.
void row2im(const float* rows, float* img, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec);

/// Forward convolution. input [N,Cin,H,W], weight [Cout,Cin,K,K],
/// bias [Cout] (may be empty), output [N,Cout,OH,OW].
void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, Tensor& output, const Conv2dSpec& spec);

/// Gradients of conv2d. grad_output [N,Cout,OH,OW].
/// Accumulates into grad_weight/grad_bias; overwrites grad_input.
/// Pass nullptr grad_input to skip the input gradient (first layer).
/// Per-sample gradient partials are reduced in fixed index order, so the
/// result is bitwise identical at any thread count.
void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor* grad_input,
                     Tensor& grad_weight, Tensor* grad_bias,
                     const Conv2dSpec& spec);

// ---------------------------------------------------------------------------
// Sparsity-aware spike dispatch (SNN inference path).
// ---------------------------------------------------------------------------

/// Inputs at or below this nonzero fraction take the sparse kernel. The
/// crossover sits near 10-15% density on current hardware (bench_kernels'
/// density sweep); 10% is the conservative default.
constexpr float kDefaultSpikeDensityThreshold = 0.10F;

struct SpikeKernelStats {
  std::int64_t nonzeros = 0;        // exact nnz of every input seen
  std::int64_t elements = 0;        // total input elements seen
  std::int64_t sparse_samples = 0;  // samples dispatched to the sparse kernel
  std::int64_t dense_samples = 0;   // samples dispatched to the dense kernel
};

/// Forward convolution with per-sample density dispatch: samples whose input
/// density is <= `density_threshold` run an event-style scatter over the
/// nonzero pixels (cost ~ nnz * K^2 * Cout); the rest run the blocked dense
/// path. `wt_cache` caches the [Cin*K*K, Cout] transposed weight — the caller
/// owns it and must clear() it whenever the weight changes (layers do this in
/// begin_sequence). The dispatch scan counts nonzeros exactly and accumulates
/// them into `stats`, which replaces the layers' standalone counting pass.
/// When `qweight` (packed from the [Cout, Cin*K*K] weight) is non-null, dense
/// samples run the int8 kernel against it instead of the fp32 blocked GEMM;
/// sparse samples keep the fp32 scatter (the dispatch is deterministic, so
/// mixed-precision results stay reproducible).
void conv2d_forward_spiking(const Tensor& input, const Tensor& weight,
                            Tensor& output, const Conv2dSpec& spec,
                            float density_threshold,
                            std::vector<float>& wt_cache,
                            SpikeKernelStats& stats,
                            const QuantizedPackedB* qweight = nullptr);

/// Fully-connected forward (out[N,out] = input[N,in] * W^T) with the same
/// density dispatch: sparse inputs take the row-compressed spike GEMM against
/// the cached [in, out] transposed weight. Same `wt_cache` contract as above;
/// same optional int8 dense path (`qweight` packed from the [out, in] weight).
void linear_forward_spiking(const Tensor& input, const Tensor& weight,
                            Tensor& output, float density_threshold,
                            std::vector<float>& wt_cache,
                            SpikeKernelStats& stats,
                            const QuantizedPackedB* qweight = nullptr);

// ---------------------------------------------------------------------------
// Pooling.
// ---------------------------------------------------------------------------

struct Pool2dSpec {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;

  std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent - kernel) / stride + 1;
  }
};

/// Throws std::invalid_argument unless the pooling window tiles the input
/// exactly ((extent - kernel) % stride == 0 in both dimensions). Layers call
/// this at forward/begin_sequence time so a silently-truncating geometry is
/// rejected instead of dropping the trailing rows/columns.
void validate_pool_geometry(const Pool2dSpec& spec, std::int64_t height,
                            std::int64_t width);

/// Max pooling; records the flat input index of each output's argmax in
/// `argmax` (same shape as output) for the backward pass. Plane-parallel
/// (each [H,W] plane is independent) when the pool has threads.
void maxpool2d_forward(const Tensor& input, Tensor& output,
                       std::vector<std::int64_t>& argmax, const Pool2dSpec& spec);

/// Scatter grad_output to the recorded argmax positions. Overwrites
/// grad_input. Argmax indices must come from maxpool2d_forward on the same
/// geometry (each output's argmax lies in its own input plane), which keeps
/// the plane-parallel scatter race-free.
void maxpool2d_backward(const Tensor& grad_output,
                        const std::vector<std::int64_t>& argmax,
                        Tensor& grad_input);

/// Average pooling.
void avgpool2d_forward(const Tensor& input, Tensor& output, const Pool2dSpec& spec);
void avgpool2d_backward(const Tensor& grad_output, Tensor& grad_input,
                        const Pool2dSpec& spec);

}  // namespace ullsnn
