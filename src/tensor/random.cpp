#include "src/tensor/random.h"

#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

namespace ullsnn {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1) with full float mantissa coverage.
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24F;
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = uniform();
  while (u1 <= 1e-12F) u1 = uniform();
  const float u2 = uniform();
  const float r = std::sqrt(-2.0F * std::log(u1));
  const float theta = 2.0F * std::numbers::pi_v<float> * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

std::int64_t Rng::uniform_int(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("Rng::uniform_int: n must be positive");
  // Rejection-free for our purposes; modulo bias is negligible for n << 2^64.
  return static_cast<std::int64_t>(next_u64() % static_cast<std::uint64_t>(n));
}

bool Rng::bernoulli(float p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_ ? 1 : 0;
  std::uint32_t bits = 0;
  std::memcpy(&bits, &cached_normal_, sizeof bits);
  st.cached_normal_bits = bits;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal != 0;
  const auto bits = static_cast<std::uint32_t>(state.cached_normal_bits);
  std::memcpy(&cached_normal_, &bits, sizeof bits);
}

void shuffle(std::vector<std::int64_t>& indices, Rng& rng) {
  for (std::int64_t i = static_cast<std::int64_t>(indices.size()) - 1; i > 0; --i) {
    const std::int64_t j = rng.uniform_int(i + 1);
    std::swap(indices[static_cast<std::size_t>(i)], indices[static_cast<std::size_t>(j)]);
  }
}

void kaiming_normal(Tensor& w, std::int64_t fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("kaiming_normal: fan_in must be positive");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  normal_fill(w, 0.0F, stddev, rng);
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform: fans must be positive");
  }
  const float limit = std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  uniform_fill(w, -limit, limit, rng);
}

void normal_fill(Tensor& w, float mean, float stddev, Rng& rng) {
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(mean, stddev);
}

void uniform_fill(Tensor& w, float lo, float hi, Rng& rng) {
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(lo, hi);
}

}  // namespace ullsnn
