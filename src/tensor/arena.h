// Per-thread scratch arena: a bump allocator for kernel temporaries
// (im2row buffers, GEMM packing panels, sparse index lists).
//
// The old kernels carried `std::vector<float>& scratch` parameters that were
// re-`resize`d on every call; every layer owned its own buffer and the
// batch-parallel paths duplicated them per thread ad hoc. The arena replaces
// all of that: each thread has one lazily-grown arena, allocations are bump
// pointers into stable chunks (growing never moves live allocations), and an
// ArenaScope restores the watermark on exit so nested kernels (a GEMM packing
// panels inside a conv that already allocated its im2row buffer) compose
// without freeing or re-touching memory. Steady-state kernel calls perform
// zero heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ullsnn {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` floats, 64-byte aligned. The pointer
  /// stays valid (and is never moved by later allocations) until the
  /// enclosing ArenaScope exits or reset() is called.
  float* alloc_floats(std::size_t count);

  /// Uninitialized storage for `count` int64 indices, 64-byte aligned.
  std::int64_t* alloc_indices(std::size_t count);

  /// Zero-filled float storage (memset on the uninitialized block).
  float* alloc_floats_zeroed(std::size_t count);

  /// Uninitialized byte storage for the int8 kernel path (quantized activation
  /// panels and int32 accumulator scratch), 64-byte aligned like the rest.
  std::uint8_t* alloc_u8(std::size_t count);
  std::int8_t* alloc_i8(std::size_t count);
  std::int32_t* alloc_i32(std::size_t count);

  /// Release every allocation but keep the chunks for reuse.
  void reset();

  /// Total bytes currently reserved across chunks (capacity, not usage).
  std::size_t capacity_bytes() const;

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  Mark mark() const;
  /// Roll back to a previous mark(); allocations made since are invalidated.
  void release(Mark m);

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::byte* alloc_bytes(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunk currently being bumped
};

/// The calling thread's arena (thread_local, created on first use). Worker
/// threads in the ThreadPool each get their own, so batch-parallel kernels
/// need no scratch coordination.
Arena& thread_arena();

/// RAII watermark: restores the arena to its entry state on destruction.
/// Every kernel that uses the thread arena opens one of these, making
/// allocations effectively stack-like across nested kernel calls.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.release(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace ullsnn
