#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ullsnn {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("shape_numel: negative extent in " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0F) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor Tensor::borrow(Shape shape, const float* data) {
  const std::int64_t n = shape_numel(shape);
  if (data == nullptr && n > 0) {
    throw std::invalid_argument("Tensor::borrow: null data for non-empty shape " +
                                shape_to_string(shape));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.borrow_ = data;
  t.borrow_numel_ = n;
  return t;
}

void Tensor::detach() {
  if (borrow_ == nullptr) return;
  data_.assign(borrow_, borrow_ + static_cast<std::size_t>(borrow_numel_));
  borrow_ = nullptr;
  borrow_numel_ = 0;
}

const std::vector<float>& Tensor::vec() const {
  if (borrow_ != nullptr) {
    throw std::logic_error("Tensor::vec() const on a borrowed tensor; detach first");
  }
  return data_;
}

std::int64_t Tensor::dim(std::int64_t d) const {
  const std::int64_t r = rank();
  if (d < 0) d += r;
  if (d < 0 || d >= r) {
    throw std::out_of_range("Tensor::dim: axis " + std::to_string(d) +
                            " out of range for shape " + shape_to_string(shape_));
  }
  return shape_[static_cast<std::size_t>(d)];
}

namespace {
Shape resolve_shape(const Shape& new_shape, std::int64_t numel) {
  Shape resolved = new_shape;
  std::int64_t known = 1;
  std::int64_t infer_at = -1;
  for (std::size_t i = 0; i < resolved.size(); ++i) {
    if (resolved[i] == -1) {
      if (infer_at != -1) throw std::invalid_argument("reshape: more than one -1 extent");
      infer_at = static_cast<std::int64_t>(i);
    } else {
      known *= resolved[i];
    }
  }
  if (infer_at >= 0) {
    if (known == 0 || numel % known != 0) {
      throw std::invalid_argument("reshape: cannot infer extent for " +
                                  shape_to_string(new_shape));
    }
    resolved[static_cast<std::size_t>(infer_at)] = numel / known;
  }
  if (shape_numel(resolved) != numel) {
    throw std::invalid_argument("reshape: element count mismatch, " +
                                shape_to_string(new_shape) + " vs numel " +
                                std::to_string(numel));
  }
  return resolved;
}
}  // namespace

Tensor Tensor::reshape(Shape new_shape) const& {
  Tensor out = *this;
  out.shape_ = resolve_shape(new_shape, numel());
  return out;
}

Tensor Tensor::reshape(Shape new_shape) && {
  shape_ = resolve_shape(new_shape, numel());
  return std::move(*this);
}

void Tensor::fill(float value) {
  if (borrow_ != nullptr) detach();
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::apply(const std::function<float(float)>& f) {
  if (borrow_ != nullptr) detach();
  for (float& x : data_) x = f(x);
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "operator+=");
  const float* r = rhs.data();
  float* d = data();
  const std::size_t n = static_cast<std::size_t>(numel());
  for (std::size_t i = 0; i < n; ++i) d[i] += r[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "operator-=");
  const float* r = rhs.data();
  float* d = data();
  const std::size_t n = static_cast<std::size_t>(numel());
  for (std::size_t i = 0; i < n; ++i) d[i] -= r[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
  check_same_shape(*this, rhs, "operator*=");
  const float* r = rhs.data();
  float* d = data();
  const std::size_t n = static_cast<std::size_t>(numel());
  for (std::size_t i = 0; i < n; ++i) d[i] *= r[i];
  return *this;
}

Tensor& Tensor::operator+=(float rhs) {
  for (float& x : vec()) x += rhs;
  return *this;
}

Tensor& Tensor::operator*=(float rhs) {
  for (float& x : vec()) x *= rhs;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  const float* d = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) acc += d[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  if (empty()) return 0.0F;
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  if (empty()) throw std::logic_error("Tensor::min on empty tensor");
  const float* d = data();
  return *std::min_element(d, d + numel());
}

float Tensor::max() const {
  if (empty()) throw std::logic_error("Tensor::max on empty tensor");
  const float* d = data();
  return *std::max_element(d, d + numel());
}

std::int64_t Tensor::argmax() const {
  if (empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  const float* d = data();
  return static_cast<std::int64_t>(
      std::distance(d, std::max_element(d, d + numel())));
}

float Tensor::rms() const {
  if (empty()) return 0.0F;
  double acc = 0.0;
  const float* d = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) acc += static_cast<double>(d[i]) * d[i];
  return static_cast<float>(std::sqrt(acc / static_cast<double>(n)));
}

std::int64_t Tensor::count(const std::function<bool(float)>& pred) const {
  std::int64_t n = 0;
  const float* d = data();
  const std::int64_t total = numel();
  for (std::int64_t i = 0; i < total; ++i) n += pred(d[i]) ? 1 : 0;
  return n;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  const float* a = data();
  const float* b = other.data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << shape_to_string(t.shape()) << " {";
  const std::int64_t n = std::min<std::int64_t>(t.numel(), 8);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i != 0) os << ", ";
    os << t[i];
  }
  if (t.numel() > n) os << ", ...";
  os << '}';
  return os;
}

}  // namespace ullsnn
