// AVX-512 tier: 6x32 fp32 micro-kernel (12 zmm accumulators) and the 6x16
// int8 kernel — vpdpbusd when the TU carries VNNI, else a 512-bit
// maddubs/madd sequence (same exact int32 results either way). Panel
// contracts in gemm_kernels.h. Compiled with -mavx512f -mavx512bw -mavx512vl
// (+ -mavx512vnni when the compiler has it); on toolchains without those
// flags the stubs keep the link whole and the tier reports unavailable.
#include "src/tensor/gemm_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__GNUC__)
#define ULLSNN_HAVE_AVX512_TU 1
#include <immintrin.h>
#else
#define ULLSNN_HAVE_AVX512_TU 0
#endif

#include <cstring>

namespace ullsnn::detail {

#if ULLSNN_HAVE_AVX512_TU

bool avx512_kernels_ready() {
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")
#if defined(__AVX512VNNI__)
         && __builtin_cpu_supports("avx512vnni")
#endif
      ;
}

void micro_kernel_fp32_avx512(const float* ap, const float* bp, float* c,
                              std::int64_t kc, std::int64_t ldc,
                              std::int64_t rows, std::int64_t cols) {
  constexpr std::int64_t kNr = 32;
  __m512 acc[kMR][2];
  for (auto& row : acc) {
    row[0] = _mm512_setzero_ps();
    row[1] = _mm512_setzero_ps();
  }
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const __m512 b0 = _mm512_loadu_ps(bp + kk * kNr);
    const __m512 b1 = _mm512_loadu_ps(bp + kk * kNr + 16);
    const float* a = ap + kk * kMR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const __m512 av = _mm512_set1_ps(a[i]);
      acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  if (rows == kMR && cols == kNr) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* ci = c + i * ldc;
      _mm512_storeu_ps(ci, _mm512_add_ps(_mm512_loadu_ps(ci), acc[i][0]));
      _mm512_storeu_ps(ci + 16, _mm512_add_ps(_mm512_loadu_ps(ci + 16), acc[i][1]));
    }
  } else {
    alignas(64) float tile[kMR][kNr];
    for (std::int64_t i = 0; i < kMR; ++i) {
      _mm512_store_ps(tile[i], acc[i][0]);
      _mm512_store_ps(tile[i] + 16, acc[i][1]);
    }
    for (std::int64_t i = 0; i < rows; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < cols; ++j) ci[j] += tile[i][j];
    }
  }
}

void micro_kernel_int8_avx512(const std::uint8_t* ap, const std::int8_t* bp,
                              std::int32_t* acc, std::int64_t kq) {
  // One 64-byte B row per k-quad covers all 16 columns in a single zmm.
  __m512i accv[kMR];
  for (std::int64_t i = 0; i < kMR; ++i) accv[i] = _mm512_setzero_si512();
#if !defined(__AVX512VNNI__)
  const __m512i ones = _mm512_set1_epi16(1);
#endif
  for (std::int64_t q = 0; q < kq; ++q) {
    const __m512i b = _mm512_loadu_si512(bp + q * kInt8Nr * 4);
    const std::uint8_t* a = ap + q * kMR * 4;
    for (std::int64_t i = 0; i < kMR; ++i) {
      std::int32_t quad;
      std::memcpy(&quad, a + i * 4, sizeof(quad));
      const __m512i av = _mm512_set1_epi32(quad);
#if defined(__AVX512VNNI__)
      accv[i] = _mm512_dpbusd_epi32(accv[i], av, b);
#else
      accv[i] = _mm512_add_epi32(accv[i],
                                 _mm512_madd_epi16(_mm512_maddubs_epi16(av, b), ones));
#endif
    }
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    _mm512_storeu_si512(acc + i * kInt8Nr, accv[i]);
  }
}

#else  // !ULLSNN_HAVE_AVX512_TU

bool avx512_kernels_ready() { return false; }

void micro_kernel_fp32_avx512(const float* ap, const float* bp, float* c,
                              std::int64_t kc, std::int64_t ldc,
                              std::int64_t rows, std::int64_t cols) {
  micro_kernel_fp32_scalar<32>(ap, bp, c, kc, ldc, rows, cols);
}

void micro_kernel_int8_avx512(const std::uint8_t* ap, const std::int8_t* bp,
                              std::int32_t* acc, std::int64_t kq) {
  micro_kernel_int8_scalar(ap, bp, acc, kq);
}

#endif  // ULLSNN_HAVE_AVX512_TU

}  // namespace ullsnn::detail
