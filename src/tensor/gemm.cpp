#include "src/tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if (defined(__AVX2__) && defined(__FMA__)) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "src/obs/metrics.h"
#include "src/tensor/dispatch.h"
#include "src/tensor/gemm_kernels.h"

namespace ullsnn {

namespace detail {

void micro_kernel_int8_scalar(const std::uint8_t* ap, const std::int8_t* bp,
                              std::int32_t* acc, std::int64_t kq) {
  std::int32_t local[kMR][kInt8Nr] = {};
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::uint8_t* a = ap + q * kMR * 4;
    const std::int8_t* b = bp + q * kInt8Nr * 4;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const std::uint8_t* ai = a + i * 4;
      for (std::int64_t j = 0; j < kInt8Nr; ++j) {
        const std::int8_t* bj = b + j * 4;
        local[i][j] += static_cast<std::int32_t>(ai[0]) * bj[0] +
                       static_cast<std::int32_t>(ai[1]) * bj[1] +
                       static_cast<std::int32_t>(ai[2]) * bj[2] +
                       static_cast<std::int32_t>(ai[3]) * bj[3];
      }
    }
  }
  std::memcpy(acc, local, sizeof(local));
}

}  // namespace detail

namespace {

using detail::ceil_div;
using detail::kInt8Nr;
using detail::kKC;
using detail::kMC;
using detail::kMR;
using detail::kNC;

// ---------------------------------------------------------------------------
// int8 activation prep. Quantization is data preparation, not kernel work: it
// runs identically under every dispatch tier, so it may use whatever SIMD the
// translation unit was compiled with. The vector and scalar paths round
// identically — vcvtps2dq and lrintf both round to nearest-even under the
// default FP environment — so results never depend on which path executed.
// ---------------------------------------------------------------------------

/// Running min/max of a row against 0 (the quantization range must include 0
/// so zero activations map exactly onto the zero point). Min/max reductions
/// are order-independent, so the vector lane split changes nothing.
void row_min_max(const float* row, std::int64_t k, std::int64_t stride,
                 float& lo_out, float& hi_out) {
  float lo = 0.0F;
  float hi = 0.0F;
  std::int64_t kk = 0;
  if (stride == 1) {
#if defined(__AVX512F__)
    __m512 wlo = _mm512_setzero_ps();
    __m512 whi = _mm512_setzero_ps();
    for (; kk + 16 <= k; kk += 16) {
      const __m512 v = _mm512_loadu_ps(row + kk);
      wlo = _mm512_min_ps(wlo, v);
      whi = _mm512_max_ps(whi, v);
    }
    lo = std::min(lo, _mm512_reduce_min_ps(wlo));
    hi = std::max(hi, _mm512_reduce_max_ps(whi));
#elif defined(__AVX2__) && defined(__FMA__)
    __m256 vlo = _mm256_setzero_ps();
    __m256 vhi = _mm256_setzero_ps();
    for (; kk + 8 <= k; kk += 8) {
      const __m256 v = _mm256_loadu_ps(row + kk);
      vlo = _mm256_min_ps(vlo, v);
      vhi = _mm256_max_ps(vhi, v);
    }
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, vlo);
    for (int t = 0; t < 8; ++t) lo = std::min(lo, tmp[t]);
    _mm256_store_ps(tmp, vhi);
    for (int t = 0; t < 8; ++t) hi = std::max(hi, tmp[t]);
#endif
    for (; kk < k; ++kk) {
      lo = std::min(lo, row[kk]);
      hi = std::max(hi, row[kk]);
    }
  } else {
    for (; kk < k; ++kk) {
      const float v = row[kk * stride];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  lo_out = lo;
  hi_out = hi;
}

/// Quantize one row to uint8 in [0, 127]: q = clamp(zp + round(x * inv)).
/// The product is bounded by [-127, 127] by construction of inv, so the
/// int32 arithmetic cannot overflow.
void quantize_row_u8(const float* src, std::int64_t stride, std::uint8_t* dst,
                     std::int64_t k, float inv, std::int32_t zp) {
  std::int64_t kk = 0;
  if (stride == 1) {
#if defined(__AVX512F__)
    // vcvtps2dq rounds to nearest-even exactly like lrintf, and vpmovdb is a
    // plain truncation of values already clamped to [0, 127], so this path is
    // bitwise-identical to the 8-wide and scalar ones below.
    const __m512 winv = _mm512_set1_ps(inv);
    const __m512i wzp = _mm512_set1_epi32(zp);
    const __m512i wmax = _mm512_set1_epi32(127);
    const __m512i wzero = _mm512_setzero_si512();
    for (; kk + 16 <= k; kk += 16) {
      const __m512 x = _mm512_loadu_ps(src + kk);
      __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(x, winv));
      q = _mm512_add_epi32(q, wzp);
      q = _mm512_min_epi32(_mm512_max_epi32(q, wzero), wmax);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + kk),
                       _mm512_cvtepi32_epi8(q));
    }
#elif defined(__AVX2__) && defined(__FMA__)
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256i vzp = _mm256_set1_epi32(zp);
    const __m256i vmax = _mm256_set1_epi32(127);
    const __m256i vzero = _mm256_setzero_si256();
    for (; kk + 8 <= k; kk += 8) {
      const __m256 x = _mm256_loadu_ps(src + kk);
      __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(x, vinv));
      q = _mm256_add_epi32(q, vzp);
      q = _mm256_min_epi32(_mm256_max_epi32(q, vzero), vmax);
      const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                          _mm256_extracti128_si256(q, 1));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + kk),
                       _mm_packus_epi16(p16, p16));
    }
#endif
    for (; kk < k; ++kk) {
      const long q = zp + std::lrintf(src[kk] * inv);
      dst[kk] = static_cast<std::uint8_t>(std::clamp<long>(q, 0, 127));
    }
  } else {
    for (; kk < k; ++kk) {
      const long q = zp + std::lrintf(src[kk * stride] * inv);
      dst[kk] = static_cast<std::uint8_t>(std::clamp<long>(q, 0, 127));
    }
  }
}

/// Pack rows [ic, ic+mc) x cols [pc, pc+kc) of A into ceil(mc/MR) panels of
/// [kc x MR] each, zero-padding the ragged last panel.
float* pack_a_block(MatView a, std::int64_t ic, std::int64_t mc, std::int64_t pc,
                    std::int64_t kc, Arena& arena) {
  const std::int64_t panels = ceil_div(mc, kMR);
  float* packed = arena.alloc_floats(static_cast<std::size_t>(panels * kc * kMR));
  for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
    float* dst = packed + (i0 / kMR) * kc * kMR;
    const std::int64_t ir = std::min(kMR, mc - i0);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* src = a.data + (ic + i0) * a.rs + (pc + kk) * a.cs;
      std::int64_t i = 0;
      for (; i < ir; ++i) dst[kk * kMR + i] = src[i * a.rs];
      for (; i < kMR; ++i) dst[kk * kMR + i] = 0.0F;
    }
  }
  return packed;
}

}  // namespace

void PackedB::pack(MatView b, std::int64_t k, std::int64_t n, Arena& arena) {
  k_ = k;
  n_ = n;
  nr_ = kernel_plan().fp32_nr;
  const std::int64_t nr = nr_;
  blocks_.clear();
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      const std::int64_t panels = ceil_div(nc, nr);
      float* data = arena.alloc_floats(static_cast<std::size_t>(panels * kc * nr));
      for (std::int64_t j0 = 0; j0 < nc; j0 += nr) {
        float* dst = data + (j0 / nr) * kc * nr;
        const std::int64_t jr = std::min(nr, nc - j0);
        if (b.cs == 1) {
          // Contiguous source rows: bulk copy + zero pad.
          for (std::int64_t kk = 0; kk < kc; ++kk) {
            const float* src = b.data + (pc + kk) * b.rs + (jc + j0);
            std::memcpy(dst + kk * nr, src, static_cast<std::size_t>(jr) * sizeof(float));
            for (std::int64_t j = jr; j < nr; ++j) dst[kk * nr + j] = 0.0F;
          }
        } else {
          for (std::int64_t kk = 0; kk < kc; ++kk) {
            const float* src = b.data + (pc + kk) * b.rs + (jc + j0) * b.cs;
            std::int64_t j = 0;
            for (; j < jr; ++j) dst[kk * nr + j] = src[j * b.cs];
            for (; j < nr; ++j) dst[kk * nr + j] = 0.0F;
          }
        }
      }
      blocks_.push_back({data, pc, kc, jc, nc});
    }
  }
}

void gemm_packed(MatView a, const PackedB& b, float* c, std::int64_t m,
                 bool accumulate) {
  const std::int64_t n = b.n_;
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  if (m == 0 || n == 0) return;
  const KernelPlan& plan = kernel_plan();
  if (b.nr_ != plan.fp32_nr) {
    throw std::logic_error(
        "gemm_packed: PackedB was packed under a different kernel plan; "
        "re-pack after switching ISA");
  }
  const auto kernel = reinterpret_cast<detail::MicroKernelFp32>(plan.fp32);
  const std::int64_t nr = plan.fp32_nr;
  Arena& arena = thread_arena();
  for (const PackedB::Block& block : b.blocks_) {
    for (std::int64_t ic = 0; ic < m; ic += kMC) {
      const std::int64_t mc = std::min(kMC, m - ic);
      ArenaScope scope(arena);
      const float* ap = pack_a_block(a, ic, mc, block.pc, block.kc, arena);
      for (std::int64_t j0 = 0; j0 < block.nc; j0 += nr) {
        const float* bp = block.data + (j0 / nr) * block.kc * nr;
        const std::int64_t cols = std::min(nr, block.nc - j0);
        for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
          kernel(ap + (i0 / kMR) * block.kc * kMR, bp,
                 c + (ic + i0) * n + block.jc + j0, block.kc, n,
                 std::min(kMR, mc - i0), cols);
        }
      }
    }
  }
}

void gemm(MatView a, MatView b, float* c, std::int64_t m, std::int64_t k,
          std::int64_t n, bool accumulate) {
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  PackedB packed;
  packed.pack(b, k, n, arena);
  gemm_packed(a, packed, c, m, accumulate);
}

std::int64_t spmm_row_compressed(const float* a, const float* b, float* c,
                                 std::int64_t m, std::int64_t k, std::int64_t n,
                                 bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  std::int64_t* idx = arena.alloc_indices(static_cast<std::size_t>(k));
  std::int64_t total_nonzeros = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    // Row compression: one branchy pass gathers the spike positions, then the
    // accumulation loop below runs branch-free and vectorized over N.
    std::int64_t count = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (ai[kk] != 0.0F) idx[count++] = kk;
    }
    total_nonzeros += count;
    float* ci = c + i * n;
    for (std::int64_t t = 0; t < count; ++t) {
      const float v = ai[idx[t]];
      const float* bk = b + idx[t] * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += v * bk[j];
    }
  }
  return total_nonzeros;
}

const char* to_string(Precision precision) {
  switch (precision) {
    case Precision::kFp32: return "fp32";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

QuantizedWeight quantize_weight_per_row(const float* w, std::int64_t rows,
                                        std::int64_t cols) {
  QuantizedWeight q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<std::size_t>(rows * cols));
  q.scales.resize(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* src = w + i * cols;
    float max_abs = 0.0F;
    for (std::int64_t kk = 0; kk < cols; ++kk) {
      max_abs = std::max(max_abs, std::fabs(src[kk]));
    }
    // An all-zero channel gets scale 1 so the dequant product stays finite.
    const float scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
    const float inv = max_abs > 0.0F ? 127.0F / max_abs : 0.0F;
    q.scales[static_cast<std::size_t>(i)] = scale;
    std::int8_t* dst = q.data.data() + i * cols;
    for (std::int64_t kk = 0; kk < cols; ++kk) {
      const long v = std::lrintf(src[kk] * inv);
      dst[kk] = static_cast<std::int8_t>(std::clamp<long>(v, -127, 127));
    }
  }
  return q;
}

void QuantizedPackedB::clear() {
  blocks_.clear();
  panels_.clear();
  colsums_.clear();
  scales_.clear();
  k_ = 0;
  n_ = 0;
}

void QuantizedPackedB::pack(const QuantizedWeight& w) {
  clear();
  k_ = w.cols;
  n_ = w.rows;
  scales_ = w.scales;
  if (k_ == 0 || n_ == 0) return;
  // First pass: total panel/colsum storage, so the vectors allocate once
  // (zero-filled — padding lanes are never written again).
  std::size_t panel_bytes = 0;
  std::size_t colsum_count = 0;
  for (std::int64_t jc = 0; jc < n_; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n_ - jc);
    for (std::int64_t pc = 0; pc < k_; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k_ - pc);
      const std::int64_t strips = ceil_div(nc, kInt8Nr);
      panel_bytes += static_cast<std::size_t>(strips * ceil_div(kc, 4) * kInt8Nr * 4);
      colsum_count += static_cast<std::size_t>(strips * kInt8Nr);
    }
  }
  panels_.assign(panel_bytes, 0);
  colsums_.assign(colsum_count, 0);
  std::size_t data_off = 0;
  std::size_t colsum_off = 0;
  for (std::int64_t jc = 0; jc < n_; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n_ - jc);
    for (std::int64_t pc = 0; pc < k_; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k_ - pc);
      const std::int64_t kq = ceil_div(kc, 4);
      const std::int64_t strips = ceil_div(nc, kInt8Nr);
      Block block{pc, kc, jc, nc, data_off, colsum_off};
      std::int8_t* data = panels_.data() + data_off;
      std::int32_t* csum = colsums_.data() + colsum_off;
      for (std::int64_t j0 = 0; j0 < nc; j0 += kInt8Nr) {
        std::int8_t* strip = data + (j0 / kInt8Nr) * kq * kInt8Nr * 4;
        const std::int64_t jr = std::min(kInt8Nr, nc - j0);
        for (std::int64_t j = 0; j < jr; ++j) {
          // Column jc+j0+j of B is row jc+j0+j of W — contiguous in k.
          const std::int8_t* src = w.data.data() + (jc + j0 + j) * k_ + pc;
          std::int32_t sum = 0;
          for (std::int64_t kk = 0; kk < kc; ++kk) {
            strip[(kk / 4) * kInt8Nr * 4 + j * 4 + (kk & 3)] = src[kk];
            sum += src[kk];
          }
          csum[j0 + j] = sum;
        }
      }
      data_off += static_cast<std::size_t>(strips * kq * kInt8Nr * 4);
      colsum_off += static_cast<std::size_t>(strips * kInt8Nr);
      blocks_.push_back(block);
    }
  }
}

void gemm_packed_int8(MatView a, const QuantizedPackedB& b, float* c,
                      std::int64_t m, bool accumulate) {
  const std::int64_t n = b.n_;
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  if (m == 0 || n == 0) return;
  ULLSNN_COUNTER_ADD("kernels.int8_dispatch", 1);
  const auto kernel = reinterpret_cast<detail::MicroKernelInt8>(kernel_plan().int8);
  Arena& arena = thread_arena();
  ArenaScope outer(arena);
  // Per-row asymmetric activation quantization to [0, 127]: the range always
  // includes 0 so zeros (the overwhelmingly common spike value) map exactly
  // to the zero point, and the 7-bit cap keeps the AVX2 maddubs pair sums
  // below i16 saturation. For binary spike rows the quantization is exact.
  float* a_scale = arena.alloc_floats(static_cast<std::size_t>(m));
  float* a_inv = arena.alloc_floats(static_cast<std::size_t>(m));
  std::int32_t* a_zp = arena.alloc_i32(static_cast<std::size_t>(m));
  const std::int64_t k = b.k_;
  // Quantize every A row exactly once into a contiguous uint8 image; the
  // per-block packing below is then pure byte movement.
  std::uint8_t* aq = arena.alloc_u8(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = a.data + i * a.rs;
    float lo = 0.0F;
    float hi = 0.0F;
    row_min_max(row, k, a.cs, lo, hi);
    if (hi == lo) {  // all-zero row
      a_scale[i] = 0.0F;
      a_inv[i] = 0.0F;
      a_zp[i] = 0;
    } else {
      a_scale[i] = (hi - lo) / 127.0F;
      a_inv[i] = 127.0F / (hi - lo);
      a_zp[i] = static_cast<std::int32_t>(
          std::clamp<long>(std::lrintf(-lo * a_inv[i]), 0, 127));
    }
    quantize_row_u8(row, a.cs, aq + i * k, k, a_inv[i], a_zp[i]);
  }
  for (const QuantizedPackedB::Block& block : b.blocks_) {
    const std::int64_t kq = ceil_div(block.kc, 4);
    const std::int32_t* csum_base = b.colsums_.data() + block.colsum_off;
    for (std::int64_t ic = 0; ic < m; ic += kMC) {
      const std::int64_t mc = std::min(kMC, m - ic);
      ArenaScope scope(arena);
      // Interleave the quantized A block into k-quad panels: one 4-byte word
      // per (row, k-quad). Padding bytes stay 0: padded B lanes are 0 too, so
      // padded products contribute nothing to accumulator or colsum.
      const std::int64_t a_panels = ceil_div(mc, kMR);
      const std::size_t ap_bytes = static_cast<std::size_t>(a_panels * kq * kMR * 4);
      std::uint8_t* ap = arena.alloc_u8(ap_bytes);
      std::memset(ap, 0, ap_bytes);
      const std::int64_t kq_full = block.kc / 4;
      for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
        std::uint8_t* dst = ap + (i0 / kMR) * kq * kMR * 4;
        const std::int64_t ir = std::min(kMR, mc - i0);
        for (std::int64_t i = 0; i < ir; ++i) {
          const std::uint8_t* src = aq + (ic + i0 + i) * k + block.pc;
          std::uint8_t* d = dst + i * 4;
          for (std::int64_t q4 = 0; q4 < kq_full; ++q4) {
            std::memcpy(d + q4 * kMR * 4, src + q4 * 4, 4);
          }
          for (std::int64_t kk = kq_full * 4; kk < block.kc; ++kk) {
            d[(kk / 4) * kMR * 4 + (kk & 3)] = src[kk];
          }
        }
      }
      alignas(64) std::int32_t acc[kMR * kInt8Nr];
      for (std::int64_t j0 = 0; j0 < block.nc; j0 += kInt8Nr) {
        const std::int8_t* bp =
            b.panels_.data() + block.data_off + (j0 / kInt8Nr) * kq * kInt8Nr * 4;
        const std::int32_t* csum = csum_base + j0;
        const float* sb = b.scales_.data() + block.jc + j0;
        const std::int64_t cols = std::min(kInt8Nr, block.nc - j0);
        for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
          const std::int64_t rows = std::min(kMR, mc - i0);
          kernel(ap + (i0 / kMR) * kq * kMR * 4, bp, acc, kq);
          // Tier-shared epilogue: zero-point correction + fused dequant.
          // |acc - zp*colsum| < 2^24 (kc <= 256), so the int -> float
          // conversion is exact and results match bitwise across tiers. The
          // vector path performs the identical elementwise operations
          // (mullo/sub exact in int32, cvtdq2ps exact below 2^24, vfmadd ==
          // fmaf), so it is bitwise-equal to the scalar tail as well.
          for (std::int64_t i = 0; i < rows; ++i) {
            const std::int64_t row = ic + i0 + i;
            const float sa = a_scale[row];
            const std::int32_t zp = a_zp[row];
            float* ci = c + row * n + block.jc + j0;
            const std::int32_t* acc_row = acc + i * kInt8Nr;
            std::int64_t j = 0;
#if defined(__AVX2__) && defined(__FMA__)
            if (cols == kInt8Nr) {
              const __m256i vzp = _mm256_set1_epi32(zp);
              const __m256 vsa = _mm256_set1_ps(sa);
              for (; j < kInt8Nr; j += 8) {
                const __m256i av = _mm256_load_si256(
                    reinterpret_cast<const __m256i*>(acc_row + j));
                const __m256i cs = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(csum + j));
                const __m256i corr =
                    _mm256_sub_epi32(av, _mm256_mullo_epi32(vzp, cs));
                const __m256 scale = _mm256_mul_ps(vsa, _mm256_loadu_ps(sb + j));
                const __m256 cv = _mm256_loadu_ps(ci + j);
                _mm256_storeu_ps(
                    ci + j,
                    _mm256_fmadd_ps(_mm256_cvtepi32_ps(corr), scale, cv));
              }
            }
#endif
            for (; j < cols; ++j) {
              const std::int32_t corr = acc_row[j] - zp * csum[j];
              const float scale = sa * sb[j];
              ci[j] = std::fmaf(static_cast<float>(corr), scale, ci[j]);
            }
          }
        }
      }
    }
  }
}

}  // namespace ullsnn
