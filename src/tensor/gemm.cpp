#include "src/tensor/gemm.h"

#include <algorithm>
#include <cstring>

namespace ullsnn {

namespace {

// Micro-tile geometry. MR x NR accumulators must fit the register file:
// with AVX-512 (32 zmm) a 6x32 tile uses 12 accumulator registers; with
// AVX2/SSE (16 ymm) 6x16 uses 12 ymm — the classic SGEMM shapes for each ISA.
// The compiler auto-vectorizes the constant-bound loops below into
// broadcast-FMA sequences; no intrinsics needed.
constexpr std::int64_t kMR = 6;
#if defined(__AVX512F__)
constexpr std::int64_t kNR = 32;
#else
constexpr std::int64_t kNR = 16;
#endif

// Cache blocking. The packed B panel (KC x NR strips) streams through L2;
// the packed A block (MC x KC) is reused across every NR strip of the
// current B block; C micro-tiles live in registers for the whole KC loop.
constexpr std::int64_t kMC = 96;    // multiple of kMR
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 1024;  // multiple of kNR

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// kc iterations of the rank-1 update on an MR x NR register tile.
/// ap: packed A panel [kc x MR] (column of MR values per k step).
/// bp: packed B panel [kc x NR] (row of NR values per k step).
/// Adds the tile into C; edge tiles pass rows < kMR / cols < kNR and only
/// the valid region is written back (the padded lanes compute on zeros).
void micro_kernel(const float* __restrict ap, const float* __restrict bp,
                  float* __restrict c, std::int64_t kc, std::int64_t ldc,
                  std::int64_t rows, std::int64_t cols) {
  float acc[kMR][kNR] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* a = ap + kk * kMR;
    const float* b = bp + kk * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float av = a[i];
      for (std::int64_t j = 0; j < kNR; ++j) acc[i][j] += av * b[j];
    }
  }
  if (rows == kMR && cols == kNR) {
    for (std::int64_t i = 0; i < kMR; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < kNR; ++j) ci[j] += acc[i][j];
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      float* ci = c + i * ldc;
      for (std::int64_t j = 0; j < cols; ++j) ci[j] += acc[i][j];
    }
  }
}

/// Pack rows [ic, ic+mc) x cols [pc, pc+kc) of A into ceil(mc/MR) panels of
/// [kc x MR] each, zero-padding the ragged last panel.
float* pack_a_block(MatView a, std::int64_t ic, std::int64_t mc, std::int64_t pc,
                    std::int64_t kc, Arena& arena) {
  const std::int64_t panels = ceil_div(mc, kMR);
  float* packed = arena.alloc_floats(static_cast<std::size_t>(panels * kc * kMR));
  for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
    float* dst = packed + (i0 / kMR) * kc * kMR;
    const std::int64_t ir = std::min(kMR, mc - i0);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      const float* src = a.data + (ic + i0) * a.rs + (pc + kk) * a.cs;
      std::int64_t i = 0;
      for (; i < ir; ++i) dst[kk * kMR + i] = src[i * a.rs];
      for (; i < kMR; ++i) dst[kk * kMR + i] = 0.0F;
    }
  }
  return packed;
}

}  // namespace

void PackedB::pack(MatView b, std::int64_t k, std::int64_t n, Arena& arena) {
  k_ = k;
  n_ = n;
  blocks_.clear();
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      const std::int64_t panels = ceil_div(nc, kNR);
      float* data = arena.alloc_floats(static_cast<std::size_t>(panels * kc * kNR));
      for (std::int64_t j0 = 0; j0 < nc; j0 += kNR) {
        float* dst = data + (j0 / kNR) * kc * kNR;
        const std::int64_t jr = std::min(kNR, nc - j0);
        if (b.cs == 1) {
          // Contiguous source rows: bulk copy + zero pad.
          for (std::int64_t kk = 0; kk < kc; ++kk) {
            const float* src = b.data + (pc + kk) * b.rs + (jc + j0);
            std::memcpy(dst + kk * kNR, src, static_cast<std::size_t>(jr) * sizeof(float));
            for (std::int64_t j = jr; j < kNR; ++j) dst[kk * kNR + j] = 0.0F;
          }
        } else {
          for (std::int64_t kk = 0; kk < kc; ++kk) {
            const float* src = b.data + (pc + kk) * b.rs + (jc + j0) * b.cs;
            std::int64_t j = 0;
            for (; j < jr; ++j) dst[kk * kNR + j] = src[j * b.cs];
            for (; j < kNR; ++j) dst[kk * kNR + j] = 0.0F;
          }
        }
      }
      blocks_.push_back({data, pc, kc, jc, nc});
    }
  }
}

void gemm_packed(MatView a, const PackedB& b, float* c, std::int64_t m,
                 bool accumulate) {
  const std::int64_t n = b.n_;
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  if (m == 0 || n == 0) return;
  Arena& arena = thread_arena();
  for (const PackedB::Block& block : b.blocks_) {
    for (std::int64_t ic = 0; ic < m; ic += kMC) {
      const std::int64_t mc = std::min(kMC, m - ic);
      ArenaScope scope(arena);
      const float* ap = pack_a_block(a, ic, mc, block.pc, block.kc, arena);
      for (std::int64_t j0 = 0; j0 < block.nc; j0 += kNR) {
        const float* bp = block.data + (j0 / kNR) * block.kc * kNR;
        const std::int64_t cols = std::min(kNR, block.nc - j0);
        for (std::int64_t i0 = 0; i0 < mc; i0 += kMR) {
          micro_kernel(ap + (i0 / kMR) * block.kc * kMR, bp,
                       c + (ic + i0) * n + block.jc + j0, block.kc, n,
                       std::min(kMR, mc - i0), cols);
        }
      }
    }
  }
}

void gemm(MatView a, MatView b, float* c, std::int64_t m, std::int64_t k,
          std::int64_t n, bool accumulate) {
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  PackedB packed;
  packed.pack(b, k, n, arena);
  gemm_packed(a, packed, c, m, accumulate);
}

std::int64_t spmm_row_compressed(const float* a, const float* b, float* c,
                                 std::int64_t m, std::int64_t k, std::int64_t n,
                                 bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  std::int64_t* idx = arena.alloc_indices(static_cast<std::size_t>(k));
  std::int64_t total_nonzeros = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    // Row compression: one branchy pass gathers the spike positions, then the
    // accumulation loop below runs branch-free and vectorized over N.
    std::int64_t count = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (ai[kk] != 0.0F) idx[count++] = kk;
    }
    total_nonzeros += count;
    float* ci = c + i * n;
    for (std::int64_t t = 0; t < count; ++t) {
      const float v = ai[idx[t]];
      const float* bk = b + idx[t] * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += v * bk[j];
    }
  }
  return total_nonzeros;
}

}  // namespace ullsnn
