// Runtime CPU dispatch for the GEMM micro-kernels.
//
// The selector resolves once per process: the ULLSNN_KERNEL_ISA environment
// variable ("scalar", "avx2", "avx512", or "auto") caps the tier, then cpuid
// (__builtin_cpu_supports) picks the best tier the machine and the build both
// support. The result is a KernelPlan — the fp32/int8 micro-kernel function
// pointers plus the fp32 panel width NR — consumed by PackedB::pack and
// gemm_packed, so every call site of the public gemm.h API picks up the
// dispatched kernels with zero changes.
//
// Tier ladder: kScalar (the pre-dispatch auto-vectorized tile, always
// available) < kAvx2 (hand-written AVX2+FMA 6x16) < kAvx512 (6x32, int8 via
// VNNI when present). A tier is eligible only if its translation unit was
// compiled with the matching -m flags AND cpuid reports the features, so a
// binary built for generic x86-64 degrades gracefully.
//
// Observability: the first resolution emits one info log line and sets the
// `kernels.isa` gauge (0 = scalar, 1 = avx2, 2 = avx512), so which kernel is
// live can be confirmed from /metrics.
//
// Test hook: set_kernel_isa_for_testing() swaps the active plan. PackedB
// panel layout depends on the plan's NR, so operands packed under a previous
// plan must be re-packed; gemm_packed enforces this (throws on NR mismatch).
#pragma once

#include <cstdint>
#include <vector>

namespace ullsnn {

enum class KernelIsa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* to_string(KernelIsa isa);

struct KernelPlan {
  KernelIsa isa = KernelIsa::kScalar;
  std::int64_t fp32_nr = 0;  // fp32 panel width (int8 width is fixed: 16)
  // Opaque here; gemm.cpp casts to the detail:: micro-kernel signatures.
  void (*fp32)() = nullptr;
  void (*int8)() = nullptr;
};

/// The active plan (resolved and logged on first call, then cached).
const KernelPlan& kernel_plan();

/// Shorthand for kernel_plan().isa.
KernelIsa active_kernel_isa();

/// Every tier this build + machine can run, best last. Always contains
/// kScalar.
std::vector<KernelIsa> supported_kernel_isas();

/// Force a tier (tests / bench A-B comparisons). Throws std::invalid_argument
/// if the tier is not in supported_kernel_isas(). Not thread-safe against
/// concurrent GEMMs; PackedB operands packed before the switch must be
/// re-packed.
void set_kernel_isa_for_testing(KernelIsa isa);

}  // namespace ullsnn
