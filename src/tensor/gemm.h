// Cache-blocked, panel-packed SGEMM and the sparsity-aware spike GEMM.
//
// One register-tiled micro-kernel (MR x NR accumulators held in registers
// across the K loop, written so GCC/Clang auto-vectorize it with broadcasted
// FMAs) sits under a classic three-level blocking scheme:
//
//   for jc in N step Nc:          B column block    (streams through L3)
//     for pc in K step Kc:        packed B panel    (lives in L2)
//       for ic in M step Mc:      packed A panel    (lives in L1)
//         MR x NR micro-tiles accumulate in registers
//
// Both operands are packed: B into [Kc x NR] column panels, A into [Kc x MR]
// row panels, with edge tiles zero-padded so the micro-kernel never branches
// on geometry. Transposed operands cost nothing extra — packing reads through
// a strided MatView, so matmul_at / matmul_bt share the single kernel.
//
// PackedB lets a caller pack a reused right-hand operand once (conv weights
// across the batch-sample loop; linear weights across time steps) and run
// many GEMMs against it. All scratch comes from the per-thread Arena — no
// heap traffic in steady state.
//
// spmm_row_compressed is the spike path: A rows are compressed to their
// nonzero (index, value) pairs on the fly, and C accumulates value-scaled
// rows of B. Work drops from M*K*N to nnz(A)*N, which beats the dense kernel
// once input density falls below roughly 10% (see docs/performance.md).
// The micro-kernel under all of this is runtime-dispatched (scalar / AVX2 /
// AVX-512 — see dispatch.h); PackedB panel layout follows the active plan's
// register-tile width, so operands must be packed and consumed under the same
// plan (enforced). The int8 path (QuantizedWeight / QuantizedPackedB /
// gemm_packed_int8) quantizes weights per output channel offline and
// activations per row on the fly, accumulates in int32, and dequantizes in a
// fused float epilogue; its results are bitwise identical across dispatch
// tiers (docs/performance.md has the argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/tensor/arena.h"

namespace ullsnn {

/// Read-only strided matrix view: element (r, c) = data[r*rs + c*cs].
struct MatView {
  const float* data = nullptr;
  std::int64_t rs = 0;  // row stride
  std::int64_t cs = 0;  // column stride
};

/// Row-major [rows, ld] matrix.
inline MatView row_major(const float* data, std::int64_t ld) {
  return {data, ld, 1};
}

/// Transpose of a row-major [rows, ld] matrix: view (r, c) = data[c*ld + r].
inline MatView transposed(const float* data, std::int64_t ld) {
  return {data, 1, ld};
}

/// Right-hand operand packed once into micro-kernel panel layout, reusable
/// across any number of gemm_packed calls. Panels live in the arena passed to
/// pack(), so the PackedB must not outlive that arena's enclosing ArenaScope.
class PackedB {
 public:
  /// Pack the [k, n] matrix viewed by `b` into panels allocated from `arena`.
  /// Panels are laid out for the kernel plan active at pack time; gemm_packed
  /// rejects a PackedB packed under a different plan (re-pack after
  /// set_kernel_isa_for_testing).
  void pack(MatView b, std::int64_t k, std::int64_t n, Arena& arena);

  std::int64_t k() const { return k_; }
  std::int64_t n() const { return n_; }

 private:
  friend void gemm_packed(MatView a, const PackedB& b, float* c, std::int64_t m,
                          bool accumulate);
  /// Panel block for one (pc, jc) tile of B; `data` holds ceil(nc/NR) panels
  /// of kc x NR floats each, consecutive panels covering consecutive NR-wide
  /// column strips.
  struct Block {
    const float* data;
    std::int64_t pc, kc;  // K-range [pc, pc+kc)
    std::int64_t jc, nc;  // N-range [jc, jc+nc)
  };
  std::vector<Block> blocks_;
  std::int64_t k_ = 0;
  std::int64_t n_ = 0;
  std::int64_t nr_ = 0;  // panel width the blocks were packed for
};

/// C[m, n()] (+)= A[m, k()] * B. C is row-major contiguous with ld = n().
void gemm_packed(MatView a, const PackedB& b, float* c, std::int64_t m,
                 bool accumulate);

/// C[m, n] (+)= A[m, k] * B[k, n], both operands through strided views,
/// C row-major contiguous. Packs B into the thread arena internally.
void gemm(MatView a, MatView b, float* c, std::int64_t m, std::int64_t k,
          std::int64_t n, bool accumulate);

/// Sparse spike GEMM: C[m, n] (+)= A[m, k] * B[k, n] with A row-compressed on
/// the fly (per row, gather nonzero column indices, then accumulate scaled
/// rows of B). A and B row-major contiguous. Returns nnz(A), which the SNN
/// layers reuse for spiking-activity accounting.
std::int64_t spmm_row_compressed(const float* a, const float* b, float* c,
                                 std::int64_t m, std::int64_t k, std::int64_t n,
                                 bool accumulate);

/// Inference numeric mode for a model or layer. kInt8 applies to the dense
/// eval-mode forward only (training and the sparse spike path stay fp32).
enum class Precision : std::uint8_t { kFp32 = 0, kInt8 = 1 };

const char* to_string(Precision precision);

/// Per-output-channel symmetric int8 weights: row i of `data` holds
/// round(w[i, :] / scales[i]) clamped to [-127, 127], with
/// scales[i] = max_abs(w[i, :]) / 127.
struct QuantizedWeight {
  std::vector<std::int8_t> data;  // [rows, cols] row-major
  std::vector<float> scales;      // [rows]
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  bool empty() const { return rows == 0; }
};

/// Quantize a row-major [rows, cols] fp32 matrix per row. Deterministic
/// (round-to-nearest-even via lrintf), so pack-time and load-time
/// quantization of the same weights produce identical bytes — the artifact
/// canary contract depends on this.
QuantizedWeight quantize_weight_per_row(const float* w, std::int64_t rows,
                                        std::int64_t cols);

/// Pre-quantized right-hand operand in int8 micro-kernel panel layout
/// (B = W^T: k = w.cols, n = w.rows), plus the per-block column sums the
/// epilogue needs for the activation zero-point correction. Unlike PackedB,
/// storage is owned by this object — a layer packs once and reuses across
/// time steps, sequences, and threads (read-only after pack).
class QuantizedPackedB {
 public:
  void pack(const QuantizedWeight& w);
  void clear();

  bool empty() const { return n_ == 0; }
  std::int64_t k() const { return k_; }
  std::int64_t n() const { return n_; }

 private:
  friend void gemm_packed_int8(MatView a, const QuantizedPackedB& b, float* c,
                               std::int64_t m, bool accumulate);
  struct Block {
    std::int64_t pc, kc;      // K-range [pc, pc+kc)
    std::int64_t jc, nc;      // N-range [jc, jc+nc)
    std::size_t data_off;     // into panels_
    std::size_t colsum_off;   // into colsums_
  };
  std::vector<Block> blocks_;
  std::vector<std::int8_t> panels_;    // k-quad interleaved (gemm_kernels.h)
  std::vector<std::int32_t> colsums_;  // per block: sum of q_b over real k
  std::vector<float> scales_;          // per output column (= W row)
  std::int64_t k_ = 0;
  std::int64_t n_ = 0;
};

/// C[m, n()] (+)= A[m, k()] * B, with A quantized on the fly per row
/// (asymmetric uint8 in [0, 127] — exact for nonnegative spike inputs) and B
/// pre-quantized; int32 accumulation, fused dequant-to-float epilogue.
/// Results are bitwise identical across dispatch tiers.
void gemm_packed_int8(MatView a, const QuantizedPackedB& b, float* c,
                      std::int64_t m, bool accumulate);

}  // namespace ullsnn
