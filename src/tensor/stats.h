// Distribution statistics over activation samples: percentiles, histograms,
// and moments. These feed the paper's Algorithm 1 (percentile grid for α)
// and the Sec. III-A analysis of K(μ) and h(T, μ).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace ullsnn {

/// p-th percentile (p in [0, 100]) via linear interpolation between order
/// statistics (the same convention as numpy.percentile). Requires non-empty.
float percentile(std::vector<float> values, float p);

/// Percentiles P[0..100] in one sort. Returns 101 values; P[i] is the i-th
/// percentile. This is the grid Algorithm 1 walks for candidate α = P[i]/μ.
std::vector<float> percentile_grid(std::vector<float> values);

struct Histogram {
  float lo = 0.0F;
  float hi = 1.0F;
  std::vector<std::int64_t> counts;  // counts.size() bins over [lo, hi]
  std::int64_t total = 0;            // includes out-of-range samples

  /// Fraction of all samples falling in [a, b] (clipped to [lo, hi] bins).
  double fraction_in(float a, float b) const;
  /// Density estimate at the bin containing x (count / (total * bin_width)).
  double density_at(float x) const;
  float bin_width() const { return (hi - lo) / static_cast<float>(counts.size()); }
};

/// Histogram of `values` over [lo, hi] with `bins` bins. Out-of-range samples
/// count toward `total` but no bin (they matter for tail fractions).
Histogram make_histogram(const std::vector<float>& values, float lo, float hi,
                         std::int64_t bins);

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;
  float min = 0.0F;
  float max = 0.0F;
};

/// Mean / stddev / skewness / min / max in one pass over the data.
Moments compute_moments(const std::vector<float>& values);

/// Flatten a tensor's elements into a vector (sampled every `stride`-th
/// element to bound memory when collecting activations over many batches).
void append_samples(const Tensor& t, std::vector<float>& out, std::int64_t stride = 1);

}  // namespace ullsnn
