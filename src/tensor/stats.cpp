#include "src/tensor/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ullsnn {

namespace {
float percentile_sorted(const std::vector<float>& sorted, float p) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<float>(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
}
}  // namespace

float percentile(std::vector<float> values, float p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0F || p > 100.0F) throw std::invalid_argument("percentile: p out of [0,100]");
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

std::vector<float> percentile_grid(std::vector<float> values) {
  if (values.empty()) throw std::invalid_argument("percentile_grid: empty sample");
  std::sort(values.begin(), values.end());
  std::vector<float> grid(101);
  for (int i = 0; i <= 100; ++i) {
    grid[static_cast<std::size_t>(i)] = percentile_sorted(values, static_cast<float>(i));
  }
  return grid;
}

double Histogram::fraction_in(float a, float b) const {
  if (total == 0 || counts.empty() || b <= a) return 0.0;
  const float w = bin_width();
  double acc = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const float bin_lo = lo + static_cast<float>(i) * w;
    const float bin_hi = bin_lo + w;
    const float ov_lo = std::max(a, bin_lo);
    const float ov_hi = std::min(b, bin_hi);
    if (ov_hi > ov_lo) {
      acc += static_cast<double>(counts[i]) * (ov_hi - ov_lo) / w;
    }
  }
  return acc / static_cast<double>(total);
}

double Histogram::density_at(float x) const {
  if (total == 0 || counts.empty() || x < lo || x >= hi) return 0.0;
  const float w = bin_width();
  const auto bin = static_cast<std::size_t>((x - lo) / w);
  if (bin >= counts.size()) return 0.0;
  return static_cast<double>(counts[bin]) /
         (static_cast<double>(total) * static_cast<double>(w));
}

Histogram make_histogram(const std::vector<float>& values, float lo, float hi,
                         std::int64_t bins) {
  if (bins <= 0) throw std::invalid_argument("make_histogram: bins must be positive");
  if (hi <= lo) throw std::invalid_argument("make_histogram: hi must exceed lo");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(static_cast<std::size_t>(bins), 0);
  h.total = static_cast<std::int64_t>(values.size());
  const float w = h.bin_width();
  for (float v : values) {
    if (v < lo || v >= hi) continue;
    auto bin = static_cast<std::size_t>((v - lo) / w);
    if (bin >= h.counts.size()) bin = h.counts.size() - 1;
    ++h.counts[bin];
  }
  return h;
}

Moments compute_moments(const std::vector<float>& values) {
  Moments m;
  if (values.empty()) return m;
  double sum = 0.0;
  m.min = values[0];
  m.max = values[0];
  for (float v : values) {
    sum += v;
    m.min = std::min(m.min, v);
    m.max = std::max(m.max, v);
  }
  m.mean = sum / static_cast<double>(values.size());
  double m2 = 0.0;
  double m3 = 0.0;
  for (float v : values) {
    const double d = v - m.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(values.size());
  m3 /= static_cast<double>(values.size());
  m.stddev = std::sqrt(m2);
  m.skewness = (m2 > 0.0) ? m3 / std::pow(m2, 1.5) : 0.0;
  return m;
}

void append_samples(const Tensor& t, std::vector<float>& out, std::int64_t stride) {
  if (stride <= 0) throw std::invalid_argument("append_samples: stride must be positive");
  for (std::int64_t i = 0; i < t.numel(); i += stride) out.push_back(t[i]);
}

}  // namespace ullsnn
