#include "src/tensor/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/tensor/gemm_kernels.h"

namespace ullsnn {

namespace {

using detail::MicroKernelFp32;
using detail::MicroKernelInt8;

KernelPlan make_plan(KernelIsa isa) {
  KernelPlan plan;
  plan.isa = isa;
  switch (isa) {
    case KernelIsa::kAvx512:
      plan.fp32_nr = 32;
      plan.fp32 = reinterpret_cast<void (*)()>(&detail::micro_kernel_fp32_avx512);
      plan.int8 = reinterpret_cast<void (*)()>(&detail::micro_kernel_int8_avx512);
      break;
    case KernelIsa::kAvx2:
      plan.fp32_nr = 16;
      plan.fp32 = reinterpret_cast<void (*)()>(&detail::micro_kernel_fp32_avx2);
      plan.int8 = reinterpret_cast<void (*)()>(&detail::micro_kernel_int8_avx2);
      break;
    case KernelIsa::kScalar:
      plan.fp32_nr = detail::kScalarNr;
      plan.fp32 = reinterpret_cast<void (*)()>(
          &detail::micro_kernel_fp32_scalar<detail::kScalarNr>);
      plan.int8 = reinterpret_cast<void (*)()>(&detail::micro_kernel_int8_scalar);
      break;
  }
  return plan;
}

// Plans are immutable after construction; the active one is published through
// an atomic pointer so a mid-run test switch is at least a tearing-free swap.
const KernelPlan kScalarPlan = make_plan(KernelIsa::kScalar);
const KernelPlan kAvx2Plan = make_plan(KernelIsa::kAvx2);
const KernelPlan kAvx512Plan = make_plan(KernelIsa::kAvx512);

const KernelPlan& plan_for(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx512: return kAvx512Plan;
    case KernelIsa::kAvx2: return kAvx2Plan;
    case KernelIsa::kScalar: break;
  }
  return kScalarPlan;
}

bool isa_supported(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return true;
    case KernelIsa::kAvx2: return detail::avx2_kernels_ready();
    case KernelIsa::kAvx512: return detail::avx512_kernels_ready();
  }
  return false;
}

/// ULLSNN_KERNEL_ISA parse: empty/"auto" -> no cap; unknown values warn and
/// fall back to auto rather than failing startup.
bool parse_isa_env(const char* text, KernelIsa* out) {
  if (text == nullptr || *text == '\0') return false;
  if (std::strcmp(text, "auto") == 0) return false;
  if (std::strcmp(text, "scalar") == 0) { *out = KernelIsa::kScalar; return true; }
  if (std::strcmp(text, "avx2") == 0) { *out = KernelIsa::kAvx2; return true; }
  if (std::strcmp(text, "avx512") == 0) { *out = KernelIsa::kAvx512; return true; }
  obs::logf(obs::LogLevel::kWarn,
            "[kernels] unrecognized ULLSNN_KERNEL_ISA=\"%s\" (want scalar|avx2|avx512|auto); using auto",
            text);
  return false;
}

void publish(const KernelPlan& plan, const char* origin) {
  ULLSNN_GAUGE_SET("kernels.isa", static_cast<double>(static_cast<int>(plan.isa)));
  // Deliberately stderr, not the info-level stdout stream: dispatch init is
  // lazy, so this line would otherwise land in the middle of
  // --benchmark_format=json output the first time a benchmark hits a GEMM.
  // The kernels.isa gauge above is the machine-readable record.
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    std::fprintf(stderr,
                 "[kernels] dispatch: isa=%s fp32 tile %dx%d, int8 tile %dx%d (%s)\n",
                 to_string(plan.isa), static_cast<int>(detail::kMR),
                 static_cast<int>(plan.fp32_nr), static_cast<int>(detail::kMR),
                 static_cast<int>(detail::kInt8Nr), origin);
  }
}

KernelIsa resolve_initial() {
  KernelIsa best = KernelIsa::kScalar;
  if (isa_supported(KernelIsa::kAvx2)) best = KernelIsa::kAvx2;
  if (isa_supported(KernelIsa::kAvx512)) best = KernelIsa::kAvx512;
  KernelIsa cap;
  if (parse_isa_env(std::getenv("ULLSNN_KERNEL_ISA"), &cap)) {
    if (static_cast<int>(cap) > static_cast<int>(best)) {
      obs::logf(obs::LogLevel::kWarn,
                "[kernels] ULLSNN_KERNEL_ISA=%s not supported on this machine/build; using %s",
                to_string(cap), to_string(best));
    } else {
      best = cap;
    }
  }
  return best;
}

std::atomic<const KernelPlan*> g_active{nullptr};
std::once_flag g_init_once;

const KernelPlan* active_plan() {
  std::call_once(g_init_once, [] {
    const KernelPlan& plan = plan_for(resolve_initial());
    g_active.store(&plan, std::memory_order_release);
    publish(plan, "cpuid");
  });
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* to_string(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
  }
  return "?";
}

const KernelPlan& kernel_plan() { return *active_plan(); }

KernelIsa active_kernel_isa() { return active_plan()->isa; }

std::vector<KernelIsa> supported_kernel_isas() {
  std::vector<KernelIsa> out{KernelIsa::kScalar};
  if (isa_supported(KernelIsa::kAvx2)) out.push_back(KernelIsa::kAvx2);
  if (isa_supported(KernelIsa::kAvx512)) out.push_back(KernelIsa::kAvx512);
  return out;
}

void set_kernel_isa_for_testing(KernelIsa isa) {
  if (!isa_supported(isa)) {
    throw std::invalid_argument(std::string("kernel isa not supported here: ") +
                                to_string(isa));
  }
  active_plan();  // ensure the once-init ran (and logged) first
  const KernelPlan& plan = plan_for(isa);
  g_active.store(&plan, std::memory_order_release);
  publish(plan, "forced");
}

}  // namespace ullsnn
