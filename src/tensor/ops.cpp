#include "src/tensor/ops.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "src/util/parallel.h"

namespace ullsnn {

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // i-k-j order: the inner loop streams both B's row and C's row, which
  // vectorizes cleanly and keeps B in cache across consecutive i.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = ai[kk];
      if (aik == 0.0F) continue;  // spikes make many zero rows; skip them
      const float* bk = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // A stored [K,M]: element A^T(i,kk) = a[kk*m + i].
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a + kk * m;
    const float* bk = b + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aik = ak[i];
      if (aik == 0.0F) continue;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // B stored [N,K]: dot products of contiguous rows — already cache-friendly.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] += acc;
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  Tensor c({a.dim(0), b.dim(1)});
  matmul(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

void im2col(const float* img, float* cols, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* ch = img + c * height * width;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      for (std::int64_t kx = 0; kx < k; ++kx, ++row) {
        float* out_row = cols + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride + ky - spec.pad;
          float* dst = out_row + oy * ow;
          if (iy < 0 || iy >= height) {
            std::memset(dst, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = ch + iy * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride + kx - spec.pad;
            dst[ox] = (ix >= 0 && ix < width) ? src_row[ix] : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, float* img, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    float* ch = img + c * height * width;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      for (std::int64_t kx = 0; kx < k; ++kx, ++row) {
        const float* in_row = cols + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= height) continue;
          const float* src = in_row + oy * ow;
          float* dst_row = ch + iy * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[ox];
          }
        }
      }
    }
  }
}

void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, Tensor& output, const Conv2dSpec& spec,
                    std::vector<float>& scratch) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t patch = spec.in_channels * spec.kernel * spec.kernel;
  if (input.dim(1) != spec.in_channels) {
    throw std::invalid_argument("conv2d_forward: input channels " +
                                std::to_string(input.dim(1)) + " != spec " +
                                std::to_string(spec.in_channels));
  }
  const auto run_sample = [&](std::int64_t nImg, std::vector<float>& cols) {
    cols.resize(static_cast<std::size_t>(patch * oh * ow));
    const float* img = input.data() + nImg * spec.in_channels * height * width;
    im2col(img, cols.data(), spec.in_channels, height, width, spec);
    float* out = output.data() + nImg * spec.out_channels * oh * ow;
    matmul(weight.data(), cols.data(), out, spec.out_channels, patch, oh * ow);
    if (!bias.empty()) {
      for (std::int64_t c = 0; c < spec.out_channels; ++c) {
        const float b = bias[c];
        float* oc = out + c * oh * ow;
        for (std::int64_t i = 0; i < oh * ow; ++i) oc[i] += b;
      }
    }
  };
  if (num_threads() > 1 && batch > 1) {
    // Samples write disjoint output slices, so batch-level parallelism needs
    // no synchronization; each worker keeps its own im2col buffer.
    parallel_for(batch, [&](std::int64_t nImg) {
      thread_local std::vector<float> local_cols;
      run_sample(nImg, local_cols);
    });
  } else {
    for (std::int64_t nImg = 0; nImg < batch; ++nImg) run_sample(nImg, scratch);
  }
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor* grad_input,
                     Tensor& grad_weight, Tensor* grad_bias,
                     const Conv2dSpec& spec, std::vector<float>& scratch) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::int64_t cols_size = patch * oh * ow;
  // scratch layout: [cols | dcols]
  scratch.resize(static_cast<std::size_t>(2 * cols_size));
  float* cols = scratch.data();
  float* dcols = scratch.data() + cols_size;
  if (grad_input != nullptr) grad_input->fill(0.0F);
  for (std::int64_t nImg = 0; nImg < batch; ++nImg) {
    const float* img = input.data() + nImg * spec.in_channels * height * width;
    const float* gout = grad_output.data() + nImg * spec.out_channels * oh * ow;
    im2col(img, cols, spec.in_channels, height, width, spec);
    // dW[Cout,patch] += gout[Cout,OHW] * cols^T[OHW,patch]
    matmul_bt(gout, cols, grad_weight.data(), spec.out_channels, oh * ow, patch,
              /*accumulate=*/true);
    if (grad_bias != nullptr) {
      for (std::int64_t c = 0; c < spec.out_channels; ++c) {
        const float* gc = gout + c * oh * ow;
        float acc = 0.0F;
        for (std::int64_t i = 0; i < oh * ow; ++i) acc += gc[i];
        (*grad_bias)[c] += acc;
      }
    }
    if (grad_input != nullptr) {
      // dcols[patch,OHW] = W^T[patch,Cout] * gout[Cout,OHW]
      matmul_at(weight.data(), gout, dcols, patch, spec.out_channels, oh * ow);
      col2im(dcols, grad_input->data() + nImg * spec.in_channels * height * width,
             spec.in_channels, height, width, spec);
    }
  }
}

void maxpool2d_forward(const Tensor& input, Tensor& output,
                       std::vector<std::int64_t>& argmax, const Pool2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  argmax.resize(static_cast<std::size_t>(batch * channels * oh * ow));
  std::int64_t out_idx = 0;
  for (std::int64_t nc = 0; nc < batch * channels; ++nc) {
    const float* plane = input.data() + nc * height * width;
    const std::int64_t plane_base = nc * height * width;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = -1;
        for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky;
          for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
            const std::int64_t ix = ox * spec.stride + kx;
            const float v = plane[iy * width + ix];
            if (v > best) {
              best = v;
              best_idx = plane_base + iy * width + ix;
            }
          }
        }
        output[out_idx] = best;
        argmax[static_cast<std::size_t>(out_idx)] = best_idx;
      }
    }
  }
}

void maxpool2d_backward(const Tensor& grad_output,
                        const std::vector<std::int64_t>& argmax,
                        Tensor& grad_input) {
  grad_input.fill(0.0F);
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax[static_cast<std::size_t>(i)]] += grad_output[i];
  }
}

void avgpool2d_forward(const Tensor& input, Tensor& output, const Pool2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const float inv = 1.0F / static_cast<float>(spec.kernel * spec.kernel);
  std::int64_t out_idx = 0;
  for (std::int64_t nc = 0; nc < batch * channels; ++nc) {
    const float* plane = input.data() + nc * height * width;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
        float acc = 0.0F;
        for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky;
          for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
            acc += plane[iy * width + ox * spec.stride + kx];
          }
        }
        output[out_idx] = acc * inv;
      }
    }
  }
}

void avgpool2d_backward(const Tensor& grad_output, Tensor& grad_input,
                        const Pool2dSpec& spec) {
  grad_input.fill(0.0F);
  const std::int64_t batch = grad_output.dim(0);
  const std::int64_t channels = grad_output.dim(1);
  const std::int64_t oh = grad_output.dim(2);
  const std::int64_t ow = grad_output.dim(3);
  const std::int64_t height = grad_input.dim(2);
  const std::int64_t width = grad_input.dim(3);
  const float inv = 1.0F / static_cast<float>(spec.kernel * spec.kernel);
  std::int64_t out_idx = 0;
  for (std::int64_t nc = 0; nc < batch * channels; ++nc) {
    float* plane = grad_input.data() + nc * height * width;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
        const float g = grad_output[out_idx] * inv;
        for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky;
          for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
            plane[iy * width + ox * spec.stride + kx] += g;
          }
        }
      }
    }
  }
}

}  // namespace ullsnn
