#include "src/tensor/ops.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"
#include "src/tensor/arena.h"
#include "src/tensor/gemm.h"
#include "src/util/parallel.h"

namespace ullsnn {

// ---------------------------------------------------------------------------
// Reference naive kernels (retained as equivalence-test ground truth and as
// the small-shape fast path — below the cutoff, panel packing costs more
// than it saves).
// ---------------------------------------------------------------------------

void matmul_naive(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // i-k-j order: the inner loop streams both B's row and C's row, which
  // vectorizes cleanly and keeps B in cache across consecutive i.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = ai[kk];
      if (aik == 0.0F) continue;  // spikes make many zero rows; skip them
      const float* bk = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_at_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // A stored [K,M]: element A^T(i,kk) = a[kk*m + i].
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a + kk * m;
    const float* bk = b + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aik = ak[i];
      if (aik == 0.0F) continue;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_bt_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // B stored [N,K]: dot products of contiguous rows — already cache-friendly.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] += acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked GEMM routing. A very narrow result (n below one micro-tile) leaves
// most of each register tile computing on padding, so those shapes also take
// the naive kernels.
// ---------------------------------------------------------------------------

namespace {
bool use_naive(std::int64_t m, std::int64_t k, std::int64_t n) {
  return n < 8 || m * k * n <= kNaiveGemmCutoff;
}
}  // namespace

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate) {
  if (use_naive(m, k, n)) {
    matmul_naive(a, b, c, m, k, n, accumulate);
    return;
  }
  gemm(row_major(a, k), row_major(b, n), c, m, k, n, accumulate);
}

void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  if (use_naive(m, k, n)) {
    matmul_at_naive(a, b, c, m, k, n, accumulate);
    return;
  }
  gemm(transposed(a, m), row_major(b, n), c, m, k, n, accumulate);
}

void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  if (use_naive(m, k, n)) {
    matmul_bt_naive(a, b, c, m, k, n, accumulate);
    return;
  }
  gemm(row_major(a, k), transposed(b, k), c, m, k, n, accumulate);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  Tensor c({a.dim(0), b.dim(1)});
  matmul(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

// ---------------------------------------------------------------------------
// im2col / im2row and their inverses.
// ---------------------------------------------------------------------------

void im2col(const float* img, float* cols, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* ch = img + c * height * width;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      for (std::int64_t kx = 0; kx < k; ++kx, ++row) {
        float* out_row = cols + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride + ky - spec.pad;
          float* dst = out_row + oy * ow;
          if (iy < 0 || iy >= height) {
            std::memset(dst, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = ch + iy * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride + kx - spec.pad;
            dst[ox] = (ix >= 0 && ix < width) ? src_row[ix] : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, float* img, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    float* ch = img + c * height * width;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      for (std::int64_t kx = 0; kx < k; ++kx, ++row) {
        const float* in_row = cols + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= height) continue;
          const float* src = in_row + oy * ow;
          float* dst_row = ch + iy * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[ox];
          }
        }
      }
    }
  }
}

namespace {

/// Slow-path patch gather with per-element border clamping. Only used for the
/// 2*pad output columns on the left/right image edge (and everything, for
/// exotic specs where the interior fast path in im2row does not apply).
void im2row_patch_clamped(const float* img, float* dst, std::int64_t channels,
                          std::int64_t height, std::int64_t width,
                          std::int64_t y0, std::int64_t x0, std::int64_t k) {
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* ch = img + c * height * width;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const std::int64_t iy = y0 + ky;
      if (iy < 0 || iy >= height) {
        for (std::int64_t kx = 0; kx < k; ++kx) *dst++ = 0.0F;
        continue;
      }
      const float* src_row = ch + iy * width;
      for (std::int64_t kx = 0; kx < k; ++kx) {
        const std::int64_t ix = x0 + kx;
        *dst++ = (ix >= 0 && ix < width) ? src_row[ix] : 0.0F;
      }
    }
  }
}

}  // namespace

void im2row(const float* img, float* rows, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  const std::int64_t patch = channels * k * k;
  const std::int64_t hw = height * width;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::int64_t y0 = oy * spec.stride - spec.pad;
    // Vertical border handling depends only on (oy, ky): rows with
    // ky in [ky_lo, ky_hi) are in-bounds, the rest are zero padding.
    const std::int64_t ky_lo = std::max<std::int64_t>(0, -y0);
    const std::int64_t ky_hi = std::min(k, height - y0);
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const std::int64_t x0 = ox * spec.stride - spec.pad;
      float* dst = rows + (oy * ow + ox) * patch;
      if (x0 < 0 || x0 + k > width) {
        im2row_patch_clamped(img, dst, channels, height, width, y0, x0, k);
        continue;
      }
      // Interior column: every kernel row is a contiguous k-float span of the
      // image, so the patch gather is k small copies per channel with no
      // per-element bounds checks. k == 3 (every conv in the model zoo) gets
      // an unrolled copy; other sizes take the memcpy loop.
      const float* base = img + y0 * width + x0;
      if (k == 3) {
        for (std::int64_t c = 0; c < channels; ++c) {
          const float* ch = base + c * hw;
          for (std::int64_t ky = 0; ky < 3; ++ky, dst += 3, ch += width) {
            if (ky < ky_lo || ky >= ky_hi) {
              dst[0] = dst[1] = dst[2] = 0.0F;
            } else {
              dst[0] = ch[0];
              dst[1] = ch[1];
              dst[2] = ch[2];
            }
          }
        }
      } else {
        for (std::int64_t c = 0; c < channels; ++c) {
          const float* ch = base + c * hw;
          for (std::int64_t ky = 0; ky < k; ++ky, dst += k, ch += width) {
            if (ky < ky_lo || ky >= ky_hi) {
              std::fill(dst, dst + k, 0.0F);
            } else {
              std::memcpy(dst, ch, sizeof(float) * static_cast<std::size_t>(k));
            }
          }
        }
      }
    }
  }
}

void row2im(const float* rows, float* img, std::int64_t channels,
            std::int64_t height, std::int64_t width, const Conv2dSpec& spec) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  const std::int64_t patch = channels * k * k;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const float* src = rows + (oy * ow + ox) * patch;
      for (std::int64_t c = 0; c < channels; ++c) {
        float* ch = img + c * height * width;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= height) {
            src += k;
            continue;
          }
          float* dst_row = ch + iy * width;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix >= 0 && ix < width) dst_row[ix] += src[kx];
          }
          src += k;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Convolution.
// ---------------------------------------------------------------------------

namespace {

/// out[Cout, OHW] = out_t[OHW, Cout]^T (+ bias), tiled over the pixel axis so
/// both streams stay cache-resident.
void transpose_to_nchw(const float* out_t, float* out, const float* bias,
                       std::int64_t cout, std::int64_t ohw) {
  constexpr std::int64_t kTile = 64;
  for (std::int64_t p0 = 0; p0 < ohw; p0 += kTile) {
    const std::int64_t pn = std::min(kTile, ohw - p0);
    for (std::int64_t co = 0; co < cout; ++co) {
      const float b = bias != nullptr ? bias[co] : 0.0F;
      const float* src = out_t + p0 * cout + co;
      float* dst = out + co * ohw + p0;
      for (std::int64_t p = 0; p < pn; ++p) dst[p] = src[p * cout] + b;
    }
  }
}

void check_conv_input(const Tensor& input, const Conv2dSpec& spec,
                      const char* who) {
  if (input.dim(1) != spec.in_channels) {
    throw std::invalid_argument(std::string(who) + ": input channels " +
                                std::to_string(input.dim(1)) + " != spec " +
                                std::to_string(spec.in_channels));
  }
}

}  // namespace

void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, Tensor& output, const Conv2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t ohw = oh * ow;
  const std::int64_t patch = spec.in_channels * spec.kernel * spec.kernel;
  check_conv_input(input, spec, "conv2d_forward");
  // The weight is the GEMM's right-hand operand ([patch, Cout] = W^T), so its
  // panels are packed exactly once here and reused across the batch loop.
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  PackedB wt_packed;
  wt_packed.pack(transposed(weight.data(), patch), patch, spec.out_channels, arena);
  const float* bias_data = bias.empty() ? nullptr : bias.data();
  const auto run_sample = [&](std::int64_t n) {
    Arena& local = thread_arena();
    ArenaScope sample_scope(local);
    const float* img = input.data() + n * spec.in_channels * height * width;
    float* rows = local.alloc_floats(static_cast<std::size_t>(ohw * patch));
    im2row(img, rows, spec.in_channels, height, width, spec);
    float* out_t = local.alloc_floats(static_cast<std::size_t>(ohw * spec.out_channels));
    gemm_packed(row_major(rows, patch), wt_packed, out_t, ohw, /*accumulate=*/false);
    transpose_to_nchw(out_t, output.data() + n * spec.out_channels * ohw, bias_data,
                      spec.out_channels, ohw);
  };
  if (num_threads() > 1 && batch > 1) {
    // Samples write disjoint output slices, so batch-level parallelism needs
    // no synchronization; each worker scratches in its own arena.
    parallel_for(batch, run_sample);
  } else {
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  }
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor* grad_input,
                     Tensor& grad_weight, Tensor* grad_bias,
                     const Conv2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t ohw = oh * ow;
  const std::int64_t cout = spec.out_channels;
  const std::int64_t patch = spec.in_channels * spec.kernel * spec.kernel;
  check_conv_input(input, spec, "conv2d_backward");
  if (grad_input != nullptr) grad_input->fill(0.0F);
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  // Each sample computes its weight/bias gradient into a private partial;
  // the reduction below adds them in sample order, so the result is bitwise
  // identical whether 1 or N threads ran the batch loop.
  float* dw_partials =
      arena.alloc_floats(static_cast<std::size_t>(batch * cout * patch));
  float* db_partials =
      grad_bias != nullptr ? arena.alloc_floats(static_cast<std::size_t>(batch * cout))
                           : nullptr;
  // The weight is the shared right-hand operand of every sample's grad-input
  // GEMM — packed once, reused across the batch loop.
  PackedB w_packed;
  if (grad_input != nullptr) {
    w_packed.pack(row_major(weight.data(), patch), cout, patch, arena);
  }
  const auto run_sample = [&](std::int64_t n) {
    Arena& local = thread_arena();
    ArenaScope sample_scope(local);
    const float* img = input.data() + n * spec.in_channels * height * width;
    const float* gout = grad_output.data() + n * cout * ohw;
    float* rows = local.alloc_floats(static_cast<std::size_t>(ohw * patch));
    im2row(img, rows, spec.in_channels, height, width, spec);
    // dW_n[Cout, patch] = gout[Cout, OHW] * rows[OHW, patch]
    gemm(row_major(gout, ohw), row_major(rows, patch), dw_partials + n * cout * patch,
         cout, ohw, patch, /*accumulate=*/false);
    if (db_partials != nullptr) {
      float* db = db_partials + n * cout;
      for (std::int64_t c = 0; c < cout; ++c) {
        const float* gc = gout + c * ohw;
        float acc = 0.0F;
        for (std::int64_t i = 0; i < ohw; ++i) acc += gc[i];
        db[c] = acc;
      }
    }
    if (grad_input != nullptr) {
      // drows[OHW, patch] = gout^T[OHW, Cout] * W[Cout, patch]
      float* drows = local.alloc_floats(static_cast<std::size_t>(ohw * patch));
      gemm_packed(transposed(gout, ohw), w_packed, drows, ohw, /*accumulate=*/false);
      row2im(drows, grad_input->data() + n * spec.in_channels * height * width,
             spec.in_channels, height, width, spec);
    }
  };
  if (num_threads() > 1 && batch > 1) {
    parallel_for(batch, run_sample);
  } else {
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  }
  // Fixed-order reduction (sample 0, 1, 2, ...) — deterministic at any
  // thread count.
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* dw = dw_partials + n * cout * patch;
    float* gw = grad_weight.data();
    for (std::int64_t i = 0; i < cout * patch; ++i) gw[i] += dw[i];
    if (db_partials != nullptr) {
      const float* db = db_partials + n * cout;
      for (std::int64_t c = 0; c < cout; ++c) (*grad_bias)[c] += db[c];
    }
  }
}

// ---------------------------------------------------------------------------
// Sparsity-aware spike dispatch.
// ---------------------------------------------------------------------------

namespace {

std::int64_t count_nonzeros_raw(const float* data, std::int64_t n) {
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < n; ++i) count += (data[i] != 0.0F) ? 1 : 0;
  return count;
}

/// Event-style sparse convolution of one sample: every nonzero input pixel
/// scatters its weight column into the [OHW, Cout] output. `wt` is the
/// transposed weight [Cin*K*K, Cout]; `out_t` must be zeroed.
void conv_sample_sparse(const float* img, const float* wt, float* out_t,
                        const Conv2dSpec& spec, std::int64_t height,
                        std::int64_t width) {
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const std::int64_t k = spec.kernel;
  const std::int64_t cout = spec.out_channels;
  for (std::int64_t ci = 0; ci < spec.in_channels; ++ci) {
    const float* ch = img + ci * height * width;
    for (std::int64_t y = 0; y < height; ++y) {
      for (std::int64_t x = 0; x < width; ++x) {
        const float v = ch[y * width + x];
        if (v == 0.0F) continue;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t ty = y + spec.pad - ky;
          if (ty < 0) break;  // ty only decreases with ky
          if (ty % spec.stride != 0) continue;
          const std::int64_t oy = ty / spec.stride;
          if (oy >= oh) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t tx = x + spec.pad - kx;
            if (tx < 0) break;
            if (tx % spec.stride != 0) continue;
            const std::int64_t ox = tx / spec.stride;
            if (ox >= ow) continue;
            float* dst = out_t + (oy * ow + ox) * cout;
            const float* wrow = wt + ((ci * k + ky) * k + kx) * cout;
            for (std::int64_t co = 0; co < cout; ++co) dst[co] += v * wrow[co];
          }
        }
      }
    }
  }
}

}  // namespace

void conv2d_forward_spiking(const Tensor& input, const Tensor& weight,
                            Tensor& output, const Conv2dSpec& spec,
                            float density_threshold,
                            std::vector<float>& wt_cache,
                            SpikeKernelStats& stats,
                            const QuantizedPackedB* qweight) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t ohw = spec.out_extent(height) * spec.out_extent(width);
  const std::int64_t cout = spec.out_channels;
  const std::int64_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::int64_t chw = spec.in_channels * height * width;
  check_conv_input(input, spec, "conv2d_forward_spiking");
  if (wt_cache.empty()) {
    // [Cout, patch] -> [patch, Cout]; rebuilt only after begin_sequence
    // invalidates it, so the transpose amortizes over the T time steps.
    wt_cache.resize(static_cast<std::size_t>(patch * cout));
    const float* w = weight.data();
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t p = 0; p < patch; ++p) {
        wt_cache[static_cast<std::size_t>(p * cout + co)] = w[co * patch + p];
      }
    }
  }
  if (qweight != nullptr && (qweight->k() != patch || qweight->n() != cout)) {
    throw std::invalid_argument("conv2d_forward_spiking: quantized weight is " +
                                std::to_string(qweight->k()) + "x" +
                                std::to_string(qweight->n()) + ", expected " +
                                std::to_string(patch) + "x" + std::to_string(cout));
  }
  Arena& arena = thread_arena();
  ArenaScope scope(arena);
  // With an int8 weight installed, dense samples never touch the fp32 packed
  // panels — skip the packing work entirely.
  PackedB wt_packed;
  if (qweight == nullptr) {
    wt_packed.pack(row_major(wt_cache.data(), cout), patch, cout, arena);
  }
  std::int64_t* nnz = arena.alloc_indices(static_cast<std::size_t>(batch));
  const auto run_sample = [&](std::int64_t n) {
    Arena& local = thread_arena();
    ArenaScope sample_scope(local);
    const float* img = input.data() + n * chw;
    // The dispatch scan doubles as the activity count: data is streamed once
    // and the exact nonzero tally comes out for free.
    const std::int64_t sample_nnz = count_nonzeros_raw(img, chw);
    nnz[n] = sample_nnz;
    const bool sparse = static_cast<double>(sample_nnz) <=
                        static_cast<double>(density_threshold) * static_cast<double>(chw);
    float* out_t = local.alloc_floats(static_cast<std::size_t>(ohw * cout));
    if (sparse) {
      std::memset(out_t, 0, static_cast<std::size_t>(ohw * cout) * sizeof(float));
      conv_sample_sparse(img, wt_cache.data(), out_t, spec, height, width);
    } else {
      float* rows = local.alloc_floats(static_cast<std::size_t>(ohw * patch));
      im2row(img, rows, spec.in_channels, height, width, spec);
      if (qweight != nullptr) {
        gemm_packed_int8(row_major(rows, patch), *qweight, out_t, ohw,
                         /*accumulate=*/false);
      } else {
        gemm_packed(row_major(rows, patch), wt_packed, out_t, ohw, /*accumulate=*/false);
      }
    }
    transpose_to_nchw(out_t, output.data() + n * cout * ohw, nullptr, cout, ohw);
  };
  if (num_threads() > 1 && batch > 1) {
    parallel_for(batch, run_sample);
  } else {
    for (std::int64_t n = 0; n < batch; ++n) run_sample(n);
  }
  const double threshold = static_cast<double>(density_threshold);
  for (std::int64_t n = 0; n < batch; ++n) {
    stats.nonzeros += nnz[n];
    const bool sparse =
        static_cast<double>(nnz[n]) <= threshold * static_cast<double>(chw);
    if (sparse) {
      ++stats.sparse_samples;
    } else {
      ++stats.dense_samples;
    }
  }
  stats.elements += batch * chw;
  ULLSNN_COUNTER_ADD("kernel.conv.spike_dispatch", batch);
}

void linear_forward_spiking(const Tensor& input, const Tensor& weight,
                            Tensor& output, float density_threshold,
                            std::vector<float>& wt_cache,
                            SpikeKernelStats& stats,
                            const QuantizedPackedB* qweight) {
  const std::int64_t m = input.dim(0);
  const std::int64_t in = weight.dim(1);
  const std::int64_t out = weight.dim(0);
  if (qweight != nullptr && (qweight->k() != in || qweight->n() != out)) {
    throw std::invalid_argument("linear_forward_spiking: quantized weight is " +
                                std::to_string(qweight->k()) + "x" +
                                std::to_string(qweight->n()) + ", expected " +
                                std::to_string(in) + "x" + std::to_string(out));
  }
  // The dispatch scan doubles as the activity count (see conv above).
  const std::int64_t nnz = count_nonzeros_raw(input.data(), m * in);
  stats.nonzeros += nnz;
  stats.elements += m * in;
  const bool sparse = static_cast<double>(nnz) <=
                      static_cast<double>(density_threshold) *
                          static_cast<double>(m * in);
  if (sparse) {
    if (wt_cache.empty()) {
      wt_cache.resize(static_cast<std::size_t>(in * out));
      const float* w = weight.data();
      for (std::int64_t o = 0; o < out; ++o) {
        for (std::int64_t i = 0; i < in; ++i) {
          wt_cache[static_cast<std::size_t>(i * out + o)] = w[o * in + i];
        }
      }
    }
    spmm_row_compressed(input.data(), wt_cache.data(), output.data(), m, in, out,
                        /*accumulate=*/false);
    stats.sparse_samples += m;
  } else {
    if (qweight != nullptr) {
      gemm_packed_int8(row_major(input.data(), in), *qweight, output.data(), m,
                       /*accumulate=*/false);
    } else {
      matmul_bt(input.data(), weight.data(), output.data(), m, in, out);
    }
    stats.dense_samples += m;
  }
  ULLSNN_COUNTER_ADD("kernel.linear.spike_dispatch", m);
}

// ---------------------------------------------------------------------------
// Pooling. Each [H,W] plane is independent, so the kernels parallelize over
// batch*channels planes; outputs (and argmax/grad slices) are disjoint, which
// keeps every thread-count bitwise deterministic.
// ---------------------------------------------------------------------------

void validate_pool_geometry(const Pool2dSpec& spec, std::int64_t height,
                            std::int64_t width) {
  const bool ok = spec.kernel > 0 && spec.stride > 0 && spec.kernel <= height &&
                  spec.kernel <= width && (height - spec.kernel) % spec.stride == 0 &&
                  (width - spec.kernel) % spec.stride == 0;
  if (!ok) {
    throw std::invalid_argument(
        "pool geometry k=" + std::to_string(spec.kernel) + " s=" +
        std::to_string(spec.stride) + " does not tile " + std::to_string(height) +
        "x" + std::to_string(width) + " exactly (trailing rows/cols would be "
        "silently dropped)");
  }
}

namespace {
void for_each_plane(std::int64_t planes, const std::function<void(std::int64_t)>& fn) {
  if (num_threads() > 1 && planes > 1) {
    parallel_for(planes, fn);
  } else {
    for (std::int64_t nc = 0; nc < planes; ++nc) fn(nc);
  }
}
}  // namespace

void maxpool2d_forward(const Tensor& input, Tensor& output,
                       std::vector<std::int64_t>& argmax, const Pool2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  argmax.resize(static_cast<std::size_t>(batch * channels * oh * ow));
  for_each_plane(batch * channels, [&](std::int64_t nc) {
    const float* plane = input.data() + nc * height * width;
    const std::int64_t plane_base = nc * height * width;
    std::int64_t out_idx = nc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = -1;
        for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky;
          const float* row = plane + iy * width + ox * spec.stride;
          const std::int64_t row_base = plane_base + iy * width + ox * spec.stride;
          for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
            const float v = row[kx];
            if (v > best) {
              best = v;
              best_idx = row_base + kx;
            }
          }
        }
        output[out_idx] = best;
        argmax[static_cast<std::size_t>(out_idx)] = best_idx;
      }
    }
  });
}

void maxpool2d_backward(const Tensor& grad_output,
                        const std::vector<std::int64_t>& argmax,
                        Tensor& grad_input) {
  grad_input.fill(0.0F);
  const std::int64_t planes = grad_output.dim(0) * grad_output.dim(1);
  const std::int64_t out_plane = grad_output.dim(2) * grad_output.dim(3);
  // Argmax targets recorded by the forward pass stay inside their own input
  // plane, so the plane-parallel scatter writes disjoint regions.
  for_each_plane(planes, [&](std::int64_t nc) {
    for (std::int64_t i = nc * out_plane; i < (nc + 1) * out_plane; ++i) {
      grad_input[argmax[static_cast<std::size_t>(i)]] += grad_output[i];
    }
  });
}

void avgpool2d_forward(const Tensor& input, Tensor& output, const Pool2dSpec& spec) {
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t height = input.dim(2);
  const std::int64_t width = input.dim(3);
  const std::int64_t oh = spec.out_extent(height);
  const std::int64_t ow = spec.out_extent(width);
  const float inv = 1.0F / static_cast<float>(spec.kernel * spec.kernel);
  for_each_plane(batch * channels, [&](std::int64_t nc) {
    const float* plane = input.data() + nc * height * width;
    std::int64_t out_idx = nc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
        float acc = 0.0F;
        for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
          const float* row =
              plane + (oy * spec.stride + ky) * width + ox * spec.stride;
          for (std::int64_t kx = 0; kx < spec.kernel; ++kx) acc += row[kx];
        }
        output[out_idx] = acc * inv;
      }
    }
  });
}

void avgpool2d_backward(const Tensor& grad_output, Tensor& grad_input,
                        const Pool2dSpec& spec) {
  grad_input.fill(0.0F);
  const std::int64_t batch = grad_output.dim(0);
  const std::int64_t channels = grad_output.dim(1);
  const std::int64_t oh = grad_output.dim(2);
  const std::int64_t ow = grad_output.dim(3);
  const std::int64_t height = grad_input.dim(2);
  const std::int64_t width = grad_input.dim(3);
  const float inv = 1.0F / static_cast<float>(spec.kernel * spec.kernel);
  for_each_plane(batch * channels, [&](std::int64_t nc) {
    float* plane = grad_input.data() + nc * height * width;
    std::int64_t out_idx = nc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++out_idx) {
        const float g = grad_output[out_idx] * inv;
        for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
          float* row = plane + (oy * spec.stride + ky) * width + ox * spec.stride;
          for (std::int64_t kx = 0; kx < spec.kernel; ++kx) row[kx] += g;
        }
      }
    }
  });
}

}  // namespace ullsnn
