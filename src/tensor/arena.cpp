#include "src/tensor/arena.h"

#include <algorithm>
#include <cstring>

namespace ullsnn {

namespace {
constexpr std::size_t kAlignment = 64;  // cache line / widest SIMD vector
constexpr std::size_t kMinChunkBytes = std::size_t{1} << 20;  // 1 MiB

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}
}  // namespace

std::byte* Arena::alloc_bytes(std::size_t bytes) {
  bytes = round_up(bytes, kAlignment);
  // Advance past chunks that cannot satisfy the request. Chunks before
  // `active_` stay untouched so their live allocations remain valid.
  while (active_ < chunks_.size() &&
         chunks_[active_].used + bytes > chunks_[active_].size) {
    ++active_;
  }
  if (active_ == chunks_.size()) {
    // Geometric growth keeps the chunk count logarithmic in total demand.
    std::size_t size = kMinChunkBytes;
    if (!chunks_.empty()) size = chunks_.back().size * 2;
    size = std::max(size, round_up(bytes, kAlignment));
    Chunk chunk;
    // operator new[] on std::byte gives kAlignment-friendly storage on all
    // mainstream allocators for sizes this large; assert the invariant.
    chunk.data = std::make_unique<std::byte[]>(size + kAlignment);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_[active_];
  // Align the base lazily per allocation (the chunk base may not be aligned).
  auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
  const std::size_t skew = round_up(base, kAlignment) - base;
  std::byte* out = chunk.data.get() + skew + chunk.used;
  chunk.used += bytes;
  return out;
}

float* Arena::alloc_floats(std::size_t count) {
  return reinterpret_cast<float*>(alloc_bytes(count * sizeof(float)));
}

std::int64_t* Arena::alloc_indices(std::size_t count) {
  return reinterpret_cast<std::int64_t*>(alloc_bytes(count * sizeof(std::int64_t)));
}

std::uint8_t* Arena::alloc_u8(std::size_t count) {
  return reinterpret_cast<std::uint8_t*>(alloc_bytes(count));
}

std::int8_t* Arena::alloc_i8(std::size_t count) {
  return reinterpret_cast<std::int8_t*>(alloc_bytes(count));
}

std::int32_t* Arena::alloc_i32(std::size_t count) {
  return reinterpret_cast<std::int32_t*>(alloc_bytes(count * sizeof(std::int32_t)));
}

float* Arena::alloc_floats_zeroed(std::size_t count) {
  float* out = alloc_floats(count);
  std::memset(out, 0, count * sizeof(float));
  return out;
}

void Arena::reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
}

std::size_t Arena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

Arena::Mark Arena::mark() const { return {active_, chunks_.empty() ? 0 : chunks_[active_].used}; }

void Arena::release(Mark m) {
  if (chunks_.empty()) return;
  for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i) chunks_[i].used = 0;
  chunks_[m.chunk].used = m.used;
  active_ = m.chunk;
}

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace ullsnn
