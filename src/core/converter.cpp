#include "src/core/converter.h"

#include <algorithm>
#include <stdexcept>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/residual.h"
#include "src/tensor/stats.h"

namespace ullsnn::core {

const char* to_string(ConversionMode mode) {
  switch (mode) {
    case ConversionMode::kOursAlphaBeta: return "ours(alpha,beta)";
    case ConversionMode::kThresholdReLU: return "threshold-relu";
    case ConversionMode::kMaxAct: return "max-act[15]";
    case ConversionMode::kPercentileHeuristic: return "pct-heuristic[16,24]";
    case ConversionMode::kWeightNorm: return "weight-norm[22,23]";
  }
  return "unknown";
}

ConversionReport plan_conversion(const ActivationProfile& profile,
                                 const ConversionConfig& config) {
  ConversionReport report;
  report.sites.reserve(profile.sites.size());
  for (const ActivationSite& site : profile.sites) {
    SiteScaling scaling;
    switch (config.mode) {
      case ConversionMode::kOursAlphaBeta: {
        const ScalingResult result = find_scaling_factors(
            site.percentiles, site.mu, config.time_steps, config.beta_step);
        scaling.alpha = result.alpha;
        scaling.v_threshold = result.alpha * site.mu;
        scaling.beta = result.beta;
        scaling.initial_membrane_fraction = 0.0F;  // bias removed (Sec. III-B)
        report.search_results.push_back(result);
        break;
      }
      case ConversionMode::kThresholdReLU:
        scaling.v_threshold = site.mu;
        scaling.initial_membrane_fraction = 0.5F;  // delta = V_th / 2T
        break;
      case ConversionMode::kMaxAct:
        scaling.v_threshold = site.d_max;
        scaling.initial_membrane_fraction = 0.5F;
        break;
      case ConversionMode::kPercentileHeuristic: {
        const float p = percentile(site.samples, config.heuristic_percentile);
        scaling.v_threshold = std::max(p * config.heuristic_scale, 1e-4F);
        break;
      }
      case ConversionMode::kWeightNorm: {
        scaling.v_threshold = 1.0F;
        scaling.norm_factor = std::max(
            percentile(site.samples, config.heuristic_percentile), 1e-4F);
        scaling.initial_membrane_fraction = 0.5F;
        break;
      }
    }
    // A site whose pre-activations never go positive (a dead layer in the
    // source DNN) yields a non-positive threshold; clamp so the converted
    // neuron is simply silent rather than ill-defined.
    scaling.v_threshold = std::max(scaling.v_threshold, 1e-3F);
    if (config.bias_fraction_override >= 0.0F) {
      scaling.initial_membrane_fraction = config.bias_fraction_override;
    }
    report.sites.push_back(scaling);
  }
  return report;
}

namespace {

snn::IfConfig make_if_config(const SiteScaling& scaling, const ConversionConfig& config) {
  snn::IfConfig neuron;
  neuron.v_threshold = scaling.v_threshold;
  neuron.beta = scaling.beta;
  neuron.leak = config.leak;
  neuron.reset = config.reset;
  neuron.initial_membrane_fraction = scaling.initial_membrane_fraction;
  neuron.train_threshold = config.train_threshold;
  neuron.train_leak = config.train_leak;
  return neuron;
}

}  // namespace

std::unique_ptr<snn::SnnNetwork> convert(dnn::Sequential& model,
                                         const ActivationProfile& profile,
                                         const ConversionConfig& config,
                                         ConversionReport* report_out) {
  ConversionReport report = plan_conversion(profile, config);
  auto net = std::make_unique<snn::SnnNetwork>(config.time_steps);
  net->seed_dropout(config.dropout_seed);

  std::size_t site_idx = 0;
  const auto next_site = [&]() -> const SiteScaling& {
    if (site_idx >= report.sites.size()) {
      throw std::logic_error("convert: DNN has more activation sites than profile");
    }
    return report.sites[site_idx++];
  };

  // kWeightNorm rescales layer l's weights by lambda_{l-1}/lambda_l so all
  // thresholds equal 1; for every other mode norm_factor is 1 and this is
  // the identity.
  float prev_norm = 1.0F;
  const auto scaled = [](const Tensor& w, float factor) {
    Tensor out = w;
    if (factor != 1.0F) out *= factor;
    return out;
  };

  for (std::int64_t i = 0; i < model.size(); ++i) {
    dnn::Layer& layer = model.layer(i);
    if (auto* conv = dynamic_cast<dnn::Conv2d*>(&layer)) {
      // Peek: a Conv2d in our model zoo is always followed by ThresholdReLU.
      const SiteScaling& s = next_site();
      net->emplace<snn::SpikingConv2d>(
          scaled(conv->weight().value, prev_norm / s.norm_factor), conv->spec(),
          make_if_config(s, config));
      prev_norm = s.norm_factor;
    } else if (auto* linear = dynamic_cast<dnn::Linear*>(&layer)) {
      // The classifier's last Linear has no following ThresholdReLU: it maps
      // to a neuron-free readout whose currents accumulate into logits.
      const bool followed_by_act =
          i + 1 < model.size() &&
          dynamic_cast<dnn::ThresholdReLU*>(&model.layer(i + 1)) != nullptr;
      if (followed_by_act) {
        const SiteScaling& s = next_site();
        net->emplace<snn::SpikingLinear>(
            scaled(linear->weight().value, prev_norm / s.norm_factor),
            make_if_config(s, config),
            /*with_neuron=*/true);
        prev_norm = s.norm_factor;
      } else {
        // Readout: undo the running normalization so logits keep their scale.
        net->emplace<snn::SpikingLinear>(scaled(linear->weight().value, prev_norm),
                                         snn::IfConfig{},
                                         /*with_neuron=*/false);
        prev_norm = 1.0F;
      }
    } else if (auto* block = dynamic_cast<dnn::ResidualBlock*>(&layer)) {
      const SiteScaling s1 = next_site();
      const SiteScaling s2 = next_site();
      Tensor projection_weight;
      Conv2dSpec projection_spec;
      if (block->has_projection()) {
        projection_weight =
            scaled(block->projection().weight().value, prev_norm / s2.norm_factor);
        projection_spec = block->projection().spec();
      }
      net->emplace<snn::SpikingResidualBlock>(
          scaled(block->conv1().weight().value, prev_norm / s1.norm_factor),
          block->conv1().spec(), make_if_config(s1, config),
          scaled(block->conv2().weight().value, s1.norm_factor / s2.norm_factor),
          block->conv2().spec(), make_if_config(s2, config),
          std::move(projection_weight), projection_spec);
      prev_norm = s2.norm_factor;
    } else if (auto* pool = dynamic_cast<dnn::MaxPool2d*>(&layer)) {
      net->emplace<snn::SpikingMaxPool>(pool->spec());
    } else if (auto* apool = dynamic_cast<dnn::AvgPool2d*>(&layer)) {
      net->emplace<snn::SpikingAvgPool>(apool->spec());
    } else if (auto* dropout = dynamic_cast<dnn::Dropout*>(&layer)) {
      net->emplace<snn::SpikingDropout>(dropout->drop_prob(), net->dropout_rng());
    } else if (dynamic_cast<dnn::Flatten*>(&layer) != nullptr) {
      net->emplace<snn::SpikingFlatten>();
    } else if (dynamic_cast<dnn::ThresholdReLU*>(&layer) != nullptr ||
               dynamic_cast<dnn::ReLU*>(&layer) != nullptr) {
      // Activation dynamics already folded into the preceding layer's neuron.
    } else {
      throw std::invalid_argument("convert: unsupported layer '" + layer.name() + "'");
    }
  }
  if (site_idx != report.sites.size()) {
    throw std::logic_error("convert: profile has more activation sites than DNN");
  }
  if (report_out != nullptr) *report_out = std::move(report);
  return net;
}

std::vector<float> per_layer_mu(snn::SnnNetwork& net, const ConversionReport& report) {
  std::vector<float> mu(static_cast<std::size_t>(net.size()), 0.0F);
  std::size_t site_idx = 0;
  const auto next_mu = [&]() -> float {
    if (site_idx >= report.sites.size()) {
      throw std::logic_error("per_layer_mu: network has more neuron sites than report");
    }
    const SiteScaling& s = report.sites[site_idx++];
    return s.alpha > 0.0F ? s.v_threshold / s.alpha : s.v_threshold;
  };
  for (std::int64_t i = 0; i < net.size(); ++i) {
    snn::SpikingLayer& layer = net.layer(i);
    if (dynamic_cast<snn::SpikingResidualBlock*>(&layer) != nullptr) {
      next_mu();  // neuron1 (internal)
      mu[static_cast<std::size_t>(i)] = next_mu();
    } else if (layer.neuron_or_null() != nullptr) {
      mu[static_cast<std::size_t>(i)] = next_mu();
    }
  }
  if (site_idx != report.sites.size()) {
    throw std::logic_error("per_layer_mu: report has more sites than the network");
  }
  return mu;
}

std::unique_ptr<snn::SnnNetwork> convert(dnn::Sequential& model,
                                         const data::LabeledImages& calibration,
                                         const ConversionConfig& config,
                                         ConversionReport* report_out) {
  const ActivationProfile profile = collect_activations(model, calibration);
  return convert(model, profile, config, report_out);
}

}  // namespace ullsnn::core
