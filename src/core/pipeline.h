// The full hybrid training pipeline of the paper (Table I's three columns):
//   (a) train a DNN with trainable clip thresholds,
//   (b) convert it to an SNN at T time steps (any ConversionMode),
//   (c) fine-tune the SNN with surrogate-gradient learning.
//
// Each stage's accuracy is reported, matching Table I's columns a/b/c.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/converter.h"
#include "src/dnn/models.h"
#include "src/dnn/trainer.h"
#include "src/snn/sgl_trainer.h"

namespace ullsnn::core {

enum class Architecture { kVgg11, kVgg13, kVgg16, kResNet20, kResNet32 };

const char* to_string(Architecture arch);

/// Instantiate an architecture from the zoo.
std::unique_ptr<dnn::Sequential> build_model(Architecture arch,
                                             const dnn::ModelConfig& config, Rng& rng);

struct PipelineConfig {
  Architecture arch = Architecture::kVgg16;
  dnn::ModelConfig model;
  dnn::TrainConfig dnn_train;
  ConversionConfig conversion;
  snn::SglConfig sgl;
  std::uint64_t weight_seed = 3;
  bool verbose = false;
};

struct PipelineResult {
  double dnn_accuracy = 0.0;        // Table I column (a)
  double converted_accuracy = 0.0;  // Table I column (b)
  double sgl_accuracy = 0.0;        // Table I column (c)
  double dnn_train_seconds = 0.0;
  double sgl_train_seconds = 0.0;
  ConversionReport conversion_report;
};

class HybridPipeline {
 public:
  explicit HybridPipeline(PipelineConfig config);

  /// Run all three stages. The trained DNN and fine-tuned SNN stay owned by
  /// the pipeline for post-hoc inspection (energy audits, distribution dumps).
  PipelineResult run(const data::LabeledImages& train,
                     const data::LabeledImages& test);

  /// Stage accessors (valid after run()).
  dnn::Sequential& dnn();
  snn::SnnNetwork& snn();

  /// Stage (a)+(b) only: returns the converted accuracy without SGL (the
  /// conversion-only sweeps of Fig. 2 and the ablation reuse this).
  double run_conversion_only(const data::LabeledImages& train,
                             const data::LabeledImages& test);

 private:
  PipelineConfig config_;
  std::unique_ptr<dnn::Sequential> dnn_;
  std::unique_ptr<snn::SnnNetwork> snn_;
};

}  // namespace ullsnn::core
