// The full hybrid training pipeline of the paper (Table I's three columns):
//   (a) train a DNN with trainable clip thresholds,
//   (b) convert it to an SNN at T time steps (any ConversionMode),
//   (c) fine-tune the SNN with surrogate-gradient learning.
//
// Each stage's accuracy is reported, matching Table I's columns a/b/c.
//
// With checkpointing enabled the pipeline is crash-safe: every completed
// stage atomically persists its weights plus a manifest, and the training
// stages additionally checkpoint per epoch (weights + optimizer momentum +
// RNG state). A re-run with the same config and directory resumes from the
// last completed stage/epoch and produces bitwise-identical results to an
// uninterrupted run (docs/robustness.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/converter.h"
#include "src/dnn/models.h"
#include "src/dnn/trainer.h"
#include "src/robust/checkpoint.h"
#include "src/snn/sgl_trainer.h"
#include "src/verify/verify.h"

namespace ullsnn::core {

enum class Architecture { kVgg11, kVgg13, kVgg16, kResNet20, kResNet32 };

const char* to_string(Architecture arch);

/// Instantiate an architecture from the zoo.
std::unique_ptr<dnn::Sequential> build_model(Architecture arch,
                                             const dnn::ModelConfig& config, Rng& rng);

/// Stage-level checkpoint/resume behaviour of HybridPipeline::run().
struct CheckpointConfig {
  bool enabled = false;
  std::string dir = "ullsnn_checkpoints";
  /// Consume an existing manifest in `dir` and skip completed stages. With
  /// false, run() starts from scratch but still writes checkpoints.
  bool resume = true;
  /// Also checkpoint stages (a) and (c) after every epoch, so an interrupt
  /// mid-stage loses at most one epoch rather than the whole stage.
  bool epoch_checkpoints = true;
};

/// Telemetry artifacts of HybridPipeline::run(). With `enabled`, tracing is
/// switched on for the duration of run(), stage spans are recorded, and a
/// probed inference pass runs after stage (c) to collect per-layer spike
/// rates, membrane statistics, and the live Delta_{alpha,beta} gap. Each
/// path is optional; empty skips that artifact. All of this is inert when
/// the library is built with -DULLSNN_TELEMETRY=OFF.
struct TelemetryOptions {
  bool enabled = false;
  std::string trace_json_path;   // chrome://tracing "traceEvents" JSON
  std::string trace_jsonl_path;  // one trace event per line
  std::string probe_csv_path;    // per-layer activity summary (CSV)
  std::string probe_jsonl_path;  // per-layer per-step records (JSONL)
  /// Test samples for the probed pass; <= 0 probes the full test set.
  std::int64_t probe_samples = 256;
};

/// Static-verification gate of HybridPipeline::run(). The graph and
/// conversion preconditions are checked as a preflight before stage (a) —
/// the checks need no trained weights, so misuse surfaces before any
/// training cost is paid — and the planned ConversionReport is re-checked
/// between stages (b) and (c). kWarn logs every diagnostic; kStrict
/// additionally throws verify::VerifyError on error-severity findings.
struct VerifyGateConfig {
  enum class Mode { kOff, kWarn, kStrict };
  Mode mode = Mode::kWarn;
  /// Also run the autograd-tape invariant checker (structural rules plus the
  /// synthetic forward/backward T004 pass) in the preflight.
  bool tape = false;
};

struct PipelineConfig {
  Architecture arch = Architecture::kVgg16;
  dnn::ModelConfig model;
  dnn::TrainConfig dnn_train;
  ConversionConfig conversion;
  snn::SglConfig sgl;
  CheckpointConfig checkpoint;
  TelemetryOptions telemetry;
  VerifyGateConfig verify;
  std::uint64_t weight_seed = 3;
  bool verbose = false;
};

struct PipelineResult {
  double dnn_accuracy = 0.0;        // Table I column (a)
  double converted_accuracy = 0.0;  // Table I column (b)
  double sgl_accuracy = 0.0;        // Table I column (c)
  double dnn_train_seconds = 0.0;
  double sgl_train_seconds = 0.0;
  ConversionReport conversion_report;
};

class HybridPipeline {
 public:
  explicit HybridPipeline(PipelineConfig config);

  /// Run all three stages. The trained DNN and fine-tuned SNN stay owned by
  /// the pipeline for post-hoc inspection (energy audits, distribution dumps).
  PipelineResult run(const data::LabeledImages& train,
                     const data::LabeledImages& test);

  /// Stage accessors (valid after run()).
  dnn::Sequential& dnn();
  snn::SnnNetwork& snn();

  /// Stage (a)+(b) only: returns the converted accuracy without SGL (the
  /// conversion-only sweeps of Fig. 2 and the ablation reuse this).
  double run_conversion_only(const data::LabeledImages& train,
                             const data::LabeledImages& test);

  /// The static preflight on its own: builds the (untrained) model and runs
  /// the graph + conversion-precondition checks without applying the gate
  /// mode. Useful for dry-running a config before committing to a run.
  verify::VerifyReport preflight();

 private:
  /// Log `report` and, in strict mode, throw verify::VerifyError on errors.
  void apply_verify_gate(const verify::VerifyReport& report, const char* stage);
  /// Stages (a)-(c), wrapped in the "pipeline.run" trace span.
  PipelineResult run_stages(const data::LabeledImages& train,
                            const data::LabeledImages& test);

  /// Telemetry epilogue of run(): probed inference over (a subset of) the
  /// test set, emitting per-layer activity through the configured sinks.
  void run_probed_inference(const data::LabeledImages& test,
                            const ConversionReport& report);

  PipelineConfig config_;
  std::unique_ptr<dnn::Sequential> dnn_;
  std::unique_ptr<snn::SnnNetwork> snn_;
};

}  // namespace ullsnn::core
