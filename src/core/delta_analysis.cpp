#include "src/core/delta_analysis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ullsnn::core {

namespace {
void check(float mu, std::int64_t t) {
  if (mu <= 0.0F) throw std::invalid_argument("delta_analysis: mu must be positive");
  if (t <= 0) throw std::invalid_argument("delta_analysis: T must be positive");
}

double fraction_in(const std::vector<float>& samples, double lo, double hi) {
  if (samples.empty()) return 0.0;
  std::int64_t n = 0;
  for (float s : samples) {
    if (s >= lo && s < hi) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(samples.size());
}
}  // namespace

double estimate_k(const std::vector<float>& d_samples, float mu) {
  check(mu, 1);
  if (d_samples.empty()) throw std::invalid_argument("estimate_k: empty sample");
  double acc = 0.0;
  for (float d : d_samples) {
    if (d > 0.0F && d <= mu) acc += d;
  }
  return acc / (static_cast<double>(d_samples.size()) * static_cast<double>(mu));
}

double estimate_h(const std::vector<float>& s_samples, float mu, std::int64_t t) {
  check(mu, t);
  const double step = static_cast<double>(mu) / static_cast<double>(t);
  double h = 0.0;
  for (std::int64_t i = 1; i <= t - 1; ++i) {
    const double g_i = fraction_in(s_samples, (static_cast<double>(i) - 0.5) * step,
                                   (static_cast<double>(i) + 0.5) * step);
    h += (static_cast<double>(i) / static_cast<double>(t)) * g_i;
  }
  // Tail term: Integral_{T'}^{mu} f_S, T' = (T - 1/2) mu / T.
  h += fraction_in(s_samples, (static_cast<double>(t) - 0.5) * step,
                   static_cast<double>(mu));
  return h;
}

double estimate_h_no_bias(const std::vector<float>& s_samples, float mu,
                          std::int64_t t) {
  check(mu, t);
  const double step = static_cast<double>(mu) / static_cast<double>(t);
  double h = 0.0;
  for (std::int64_t i = 1; i <= t - 1; ++i) {
    const double g = fraction_in(s_samples, static_cast<double>(i) * step,
                                 static_cast<double>(i + 1) * step);
    h += (static_cast<double>(i) / static_cast<double>(t)) * g;
  }
  h += fraction_in(s_samples, static_cast<double>(t) * step,
                   std::max(static_cast<double>(mu),
                            static_cast<double>(t) * step));
  return h;
}

float dnn_activation(float d, float mu) {
  return std::clamp(d, 0.0F, mu);
}

float snn_activation(float s, float mu, float alpha, float beta, std::int64_t t,
                     bool bias_shift) {
  check(mu, t);
  const float v_th = alpha * mu;  // layer threshold after scaling
  if (v_th <= 0.0F) return 0.0F;
  // Average output of Eq. 5 with the Fig. 1(b) scaling: the total integrated
  // drive over T steps is T*s (plus the optional half-threshold bias charge);
  // each emitted spike contributes beta*V_th/T to the average.
  const float drive = static_cast<float>(t) * s + (bias_shift ? 0.5F * v_th : 0.0F);
  const auto spikes = static_cast<std::int64_t>(std::floor(drive / v_th));
  const std::int64_t clipped = std::clamp<std::int64_t>(spikes, 0, t);
  return beta * v_th * static_cast<float>(clipped) / static_cast<float>(t);
}

double empirical_delta(const std::vector<float>& samples, float mu, float alpha,
                       float beta, std::int64_t t, bool bias_shift) {
  if (samples.empty()) throw std::invalid_argument("empirical_delta: empty sample");
  double acc = 0.0;
  for (float x : samples) {
    acc += static_cast<double>(dnn_activation(x, mu)) -
           static_cast<double>(snn_activation(x, mu, alpha, beta, t, bias_shift));
  }
  return acc / static_cast<double>(samples.size());
}

}  // namespace ullsnn::core
