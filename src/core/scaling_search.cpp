#include "src/core/scaling_search.h"

#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ullsnn::core {

double compute_scaling_loss(const std::vector<float>& percentiles, float mu,
                            float alpha, float beta, std::int64_t time_steps) {
  if (mu <= 0.0F) throw std::invalid_argument("compute_scaling_loss: mu must be positive");
  if (time_steps <= 0) throw std::invalid_argument("compute_scaling_loss: T must be positive");
  const double am = static_cast<double>(alpha) * mu;       // alpha*mu
  const double abm = am * beta;                            // alpha*beta*mu
  const double t = static_cast<double>(time_steps);
  double loss = 0.0;
  for (float pf : percentiles) {
    const double p = pf;
    if (p <= 0.0) continue;  // ReLU region: both outputs are 0
    if (p <= am) {
      // Seg-I: p falls on staircase step j (j spikes emitted on average).
      const auto j = static_cast<double>(
          std::min<std::int64_t>(static_cast<std::int64_t>(p * t / am), time_steps - 1));
      loss += p - j * abm / t;
    } else if (p <= static_cast<double>(mu)) {
      // Seg-II: SNN saturated at T spikes, DNN still linear.
      loss += p - abm;
    } else {
      // Seg-III: both saturated (DNN clipped at mu).
      loss += static_cast<double>(mu) * (1.0 - static_cast<double>(alpha) * beta);
    }
  }
  return loss;
}

namespace {
ScalingResult search_over_alphas(const std::vector<float>& alphas,
                                 const std::vector<float>& percentiles, float mu,
                                 std::int64_t time_steps, float beta_step) {
  if (beta_step <= 0.0F) throw std::invalid_argument("beta_step must be positive");
  ULLSNN_TRACE_SCOPE("core.scaling_search");
  ScalingResult best;
  best.initial_loss = compute_scaling_loss(percentiles, mu, 1.0F, 1.0F, time_steps);
  best.loss = best.initial_loss;
  std::int64_t candidates = 0;
  for (float alpha : alphas) {
    if (alpha <= 0.0F || alpha > 1.0F) continue;
    for (float beta = 0.0F; beta <= 2.0F + 1e-6F; beta += beta_step) {
      const double loss = compute_scaling_loss(percentiles, mu, alpha, beta, time_steps);
      ++candidates;
      if (std::abs(loss) < std::abs(best.loss)) {
        best.alpha = alpha;
        best.beta = beta;
        best.loss = loss;
      }
    }
  }
  ULLSNN_COUNTER_ADD("scaling_search.candidates", candidates);
  ULLSNN_COUNTER_ADD("scaling_search.sites", 1);
  return best;
}
}  // namespace

ScalingResult find_scaling_factors(const std::vector<float>& percentiles, float mu,
                                   std::int64_t time_steps, float beta_step) {
  // Candidate alphas: P[j]/mu for every percentile P[j] <= mu (Algorithm 1's
  // "M is the largest integer satisfying P[M] <= mu").
  std::vector<float> alphas;
  alphas.reserve(percentiles.size());
  for (float p : percentiles) {
    if (p > 0.0F && p <= mu) alphas.push_back(p / mu);
  }
  return search_over_alphas(alphas, percentiles, mu, time_steps, beta_step);
}

ScalingResult find_scaling_factors_linear(const std::vector<float>& percentiles,
                                          float mu, std::int64_t time_steps,
                                          std::int64_t grid_points, float beta_step) {
  if (grid_points <= 0) throw std::invalid_argument("grid_points must be positive");
  std::vector<float> alphas;
  alphas.reserve(static_cast<std::size_t>(grid_points));
  for (std::int64_t i = 1; i <= grid_points; ++i) {
    alphas.push_back(static_cast<float>(i) / static_cast<float>(grid_points));
  }
  return search_over_alphas(alphas, percentiles, mu, time_steps, beta_step);
}

std::vector<ScalingResult> find_all_scaling_factors(const ActivationProfile& profile,
                                                    std::int64_t time_steps,
                                                    float beta_step) {
  std::vector<ScalingResult> results;
  results.reserve(profile.sites.size());
  for (const ActivationSite& site : profile.sites) {
    results.push_back(
        find_scaling_factors(site.percentiles, site.mu, time_steps, beta_step));
  }
  return results;
}

}  // namespace ullsnn::core
