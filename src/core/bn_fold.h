// BatchNorm folding for conversion.
//
// Conversion operates on bias-free conv/linear + ThresholdReLU chains; BN
// networks (the Deng [15] / calibration [16] baselines) must first fold each
// BatchNorm into its preceding convolution:
//
//   y = gamma * (conv(x) - mean) / sqrt(var + eps) + beta
//     = conv'(x) + b'   with   W' = W * gamma/sqrt(var+eps)  (per out-channel)
//                              b' = beta - mean * gamma/sqrt(var+eps)
//
// The fold rewrites the Conv2d's weights in place, enables its bias, and
// replaces the BatchNorm2d with nothing (the caller rebuilds the Sequential
// without it via fold_batchnorm, which returns a new chain).
#pragma once

#include <memory>

#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/sequential.h"

namespace ullsnn::core {

/// Fold one BN into one conv: mutates `conv` (weights, bias) using `bn`'s
/// learned affine and running statistics.
void fold_bn_into_conv(dnn::Conv2d& conv, const dnn::BatchNorm2d& bn);

/// Rebuild `model` with every Conv2d + BatchNorm2d pair fused (weights are
/// moved out of `model`, which is left in an unspecified valid state).
/// Layers other than folded BatchNorms are transferred untouched.
/// Throws if a BatchNorm2d is not directly preceded by a Conv2d.
std::unique_ptr<dnn::Sequential> fold_batchnorm(dnn::Sequential& model);

}  // namespace ullsnn::core
