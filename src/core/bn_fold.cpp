#include "src/core/bn_fold.h"

#include <cmath>
#include <stdexcept>
#include "src/obs/trace.h"

#include "src/dnn/batchnorm.h"
#include "src/dnn/conv2d.h"

namespace ullsnn::core {

void fold_bn_into_conv(dnn::Conv2d& conv, const dnn::BatchNorm2d& bn) {
  const std::int64_t out_ch = conv.spec().out_channels;
  if (bn.channels() != out_ch) {
    throw std::invalid_argument("fold_bn_into_conv: channel mismatch (" +
                                std::to_string(bn.channels()) + " vs " +
                                std::to_string(out_ch) + ")");
  }
  Tensor& w = conv.weight().value;
  const std::int64_t per_channel = w.numel() / out_ch;
  Tensor bias = conv.has_bias() ? conv.bias().value : Tensor({out_ch});
  for (std::int64_t c = 0; c < out_ch; ++c) {
    const float inv_std =
        1.0F / std::sqrt(bn.running_var()[c] + bn.epsilon());
    const float scale = bn.gamma().value[c] * inv_std;
    float* wc = w.data() + c * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) wc[i] *= scale;
    bias[c] = scale * (bias[c] - bn.running_mean()[c]) + bn.beta().value[c];
  }
  conv.set_bias(std::move(bias));
}

std::unique_ptr<dnn::Sequential> fold_batchnorm(dnn::Sequential& model) {
  ULLSNN_TRACE_SCOPE("core.bn_fold");
  auto folded = std::make_unique<dnn::Sequential>();
  dnn::Conv2d* last_conv = nullptr;
  for (dnn::LayerPtr& layer : model.release_layers()) {
    if (auto* bn = dynamic_cast<dnn::BatchNorm2d*>(layer.get())) {
      if (last_conv == nullptr) {
        throw std::invalid_argument(
            "fold_batchnorm: BatchNorm2d not preceded by Conv2d");
      }
      fold_bn_into_conv(*last_conv, *bn);
      last_conv = nullptr;
      continue;  // the BN layer is dropped
    }
    last_conv = dynamic_cast<dnn::Conv2d*>(layer.get());
    folded->append(std::move(layer));
  }
  return folded;
}

}  // namespace ullsnn::core
