#include "src/core/pipeline.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "src/obs/build_info.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/obs/sink.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace ullsnn::core {

const char* to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kVgg11: return "VGG-11";
    case Architecture::kVgg13: return "VGG-13";
    case Architecture::kVgg16: return "VGG-16";
    case Architecture::kResNet20: return "ResNet-20";
    case Architecture::kResNet32: return "ResNet-32";
  }
  return "unknown";
}

std::unique_ptr<dnn::Sequential> build_model(Architecture arch,
                                             const dnn::ModelConfig& config, Rng& rng) {
  switch (arch) {
    case Architecture::kVgg11: return dnn::build_vgg(11, config, rng);
    case Architecture::kVgg13: return dnn::build_vgg(13, config, rng);
    case Architecture::kVgg16: return dnn::build_vgg(16, config, rng);
    case Architecture::kResNet20: return dnn::build_resnet(20, config, rng);
    case Architecture::kResNet32: return dnn::build_resnet(32, config, rng);
  }
  throw std::invalid_argument("build_model: unknown architecture");
}

HybridPipeline::HybridPipeline(PipelineConfig config) : config_(std::move(config)) {}

namespace {

/// First `count` samples of `full` (a copy); the whole set when count <= 0 or
/// exceeds the set.
data::LabeledImages head_subset(const data::LabeledImages& full, std::int64_t count) {
  if (count <= 0 || count >= full.size()) return full;
  Shape shape = full.images.shape();
  const std::int64_t per_sample = full.images.numel() / shape[0];
  shape[0] = count;
  data::LabeledImages subset;
  subset.images = Tensor(shape);
  std::memcpy(subset.images.data(), full.images.data(),
              sizeof(float) * static_cast<std::size_t>(count * per_sample));
  subset.labels.assign(full.labels.begin(), full.labels.begin() + count);
  return subset;
}

/// Preflight options for a pipeline config: graph + conversion preconditions
/// (plus tape rules when requested). Delta-identity violations escalate to
/// errors when the telemetry probe would consume the live Delta estimate.
verify::VerifyOptions preflight_options(const PipelineConfig& config) {
  verify::VerifyOptions options;
  options.input_shape = {2, config.model.in_channels, config.model.image_size,
                         config.model.image_size};
  options.conversion_config = config.conversion;
  options.delta_identity_required = config.telemetry.enabled;
  options.tape = config.verify.tape;
  options.tape_backward = config.verify.tape;
  return options;
}

}  // namespace

void HybridPipeline::apply_verify_gate(const verify::VerifyReport& report,
                                       const char* stage) {
  for (const verify::Diagnostic& d : report.diagnostics) {
    obs::logf(d.severity == verify::Severity::kError ? obs::LogLevel::kError
                                                     : obs::LogLevel::kWarn,
              "[verify/%s] %s", stage, verify::to_string(d).c_str());
  }
  ULLSNN_COUNTER_ADD("verify.errors", report.error_count());
  ULLSNN_COUNTER_ADD("verify.warnings", report.warning_count());
  if (config_.verify.mode == VerifyGateConfig::Mode::kStrict && !report.ok()) {
    throw verify::VerifyError(report);
  }
}

verify::VerifyReport HybridPipeline::preflight() {
  Rng rng(config_.weight_seed);
  auto model = build_model(config_.arch, config_.model, rng);
  return verify::verify_model(*model, preflight_options(config_));
}

PipelineResult HybridPipeline::run(const data::LabeledImages& train,
                                   const data::LabeledImages& test) {
  const TelemetryOptions& tel = config_.telemetry;
  const bool tracer_was_enabled = obs::Tracer::instance().enabled();
  if (tel.enabled) obs::Tracer::instance().set_enabled(true);
  // The stage work lives in run_stages() so its "pipeline.run" span closes
  // before the trace files are written below.
  PipelineResult result = run_stages(train, test);
  if (tel.enabled) {
    run_probed_inference(test, result.conversion_report);
    if (!tel.trace_json_path.empty()) {
      obs::Tracer::instance().write_chrome_trace(tel.trace_json_path);
    }
    if (!tel.trace_jsonl_path.empty()) {
      obs::Tracer::instance().write_jsonl(tel.trace_jsonl_path);
    }
    obs::Tracer::instance().set_enabled(tracer_was_enabled);
  }
  return result;
}

PipelineResult HybridPipeline::run_stages(const data::LabeledImages& train,
                                          const data::LabeledImages& test) {
  ULLSNN_TRACE_SCOPE("pipeline.run");
  ULLSNN_COUNTER_ADD("pipeline.runs", 1);

  PipelineResult result;
  const CheckpointConfig& ck = config_.checkpoint;
  robust::PipelineManifest manifest;
  if (ck.enabled) {
    std::filesystem::create_directories(ck.dir);
    const std::string mpath = robust::manifest_path(ck.dir);
    if (ck.resume && std::filesystem::exists(mpath)) {
      manifest = robust::load_manifest(mpath);
      if (config_.verbose && manifest.stage_completed > 0) {
        obs::logf(obs::LogLevel::kInfo,
                  "[pipeline] resuming: stage %lld already completed (%s)",
                  static_cast<long long>(manifest.stage_completed), ck.dir.c_str());
        ULLSNN_COUNTER_ADD("pipeline.resumes", 1);
      }
    }
  }
  Rng rng(config_.weight_seed);
  dnn_ = build_model(config_.arch, config_.model, rng);

  // Verification preflight: graph + conversion preconditions need no trained
  // weights, so stages (a) and (b) are both gated here — before any training
  // cost is paid — rather than after stage (a) completes.
  if (config_.verify.mode != VerifyGateConfig::Mode::kOff) {
    ULLSNN_TRACE_SCOPE("pipeline.verify.preflight");
    apply_verify_gate(verify::verify_model(*dnn_, preflight_options(config_)),
                      "preflight");
  }

  // Stage (a): DNN training.
  if (ck.enabled && manifest.stage_completed >= 1) {
    robust::load_params(dnn_->params(), robust::stage_weights_path(ck.dir, 1));
    result.dnn_accuracy = manifest.dnn_accuracy;
    result.dnn_train_seconds = manifest.dnn_train_seconds;
  } else {
    ULLSNN_TRACE_SCOPE("pipeline.stage_a.dnn_train");
    Timer timer;
    dnn::TrainConfig dnn_cfg = config_.dnn_train;
    dnn_cfg.verbose = config_.verbose;
    dnn::DnnTrainer dnn_trainer(*dnn_, dnn_cfg);
    std::unique_ptr<robust::TrainCheckpointer> epoch_ckpt;
    if (ck.enabled && ck.epoch_checkpoints) {
      epoch_ckpt = std::make_unique<robust::TrainCheckpointer>(
          robust::stage_train_state_path(ck.dir, 1));
    }
    dnn_trainer.fit(train, nullptr, epoch_ckpt.get());
    result.dnn_train_seconds = timer.seconds();
    result.dnn_accuracy = dnn_trainer.evaluate(test);
    if (ck.enabled) {
      robust::save_params(dnn_->params(), robust::stage_weights_path(ck.dir, 1));
      manifest.stage_completed = 1;
      manifest.dnn_accuracy = result.dnn_accuracy;
      manifest.dnn_train_seconds = result.dnn_train_seconds;
      robust::save_manifest(manifest, robust::manifest_path(ck.dir));
      if (epoch_ckpt) epoch_ckpt->remove();
    }
  }
  ULLSNN_GAUGE_SET("pipeline.dnn_accuracy", result.dnn_accuracy);
  if (config_.verbose) {
    obs::logf(obs::LogLevel::kInfo, "[pipeline] DNN accuracy: %.4f",
              result.dnn_accuracy);
  }

  // Stage (b): conversion (calibrated on the training set). Conversion is
  // deterministic given the stage-(a) weights, so a resumed run rebuilds the
  // SNN topology and the report by re-converting, then (for stage >= 2)
  // overlays the persisted weights — identical to the uninterrupted run.
  {
    ULLSNN_TRACE_SCOPE("pipeline.stage_b.convert");
    snn_ = convert(*dnn_, train, config_.conversion, &result.conversion_report);
  }
  if (ck.enabled && manifest.stage_completed >= 2) {
    robust::load_params(snn_->params(), robust::stage_weights_path(ck.dir, 2));
    result.converted_accuracy = manifest.converted_accuracy;
  } else {
    ULLSNN_TRACE_SCOPE("pipeline.stage_b.evaluate");
    result.converted_accuracy = snn::evaluate_snn(*snn_, test);
    if (ck.enabled) {
      robust::save_params(snn_->params(), robust::stage_weights_path(ck.dir, 2));
      manifest.stage_completed = 2;
      manifest.converted_accuracy = result.converted_accuracy;
      robust::save_manifest(manifest, robust::manifest_path(ck.dir));
    }
  }
  ULLSNN_GAUGE_SET("pipeline.converted_accuracy", result.converted_accuracy);
  if (config_.verbose) {
    obs::logf(obs::LogLevel::kInfo,
              "[pipeline] converted SNN accuracy (T=%lld, %s): %.4f",
              static_cast<long long>(config_.conversion.time_steps),
              to_string(config_.conversion.mode), result.converted_accuracy);
  }

  // Gate before stage (c): the planned scaling report now exists; validate
  // the (alpha, beta, V_th) entries and their alignment with the model's
  // activation sites before spending the SGL fine-tuning epochs.
  if (config_.verify.mode != VerifyGateConfig::Mode::kOff) {
    ULLSNN_TRACE_SCOPE("pipeline.verify.report");
    apply_verify_gate(
        verify::check_conversion_report(result.conversion_report, config_.conversion,
                                        verify::count_activation_sites(*dnn_)),
        "report");
  }

  // Stage (c): SGL fine-tuning.
  if (ck.enabled && manifest.stage_completed >= 3) {
    robust::load_params(snn_->params(), robust::stage_weights_path(ck.dir, 3));
    result.sgl_accuracy = manifest.sgl_accuracy;
    result.sgl_train_seconds = manifest.sgl_train_seconds;
  } else {
    ULLSNN_TRACE_SCOPE("pipeline.stage_c.sgl_train");
    Timer timer;
    snn::SglConfig sgl_cfg = config_.sgl;
    sgl_cfg.verbose = config_.verbose;
    snn::SglTrainer sgl_trainer(*snn_, sgl_cfg);
    std::unique_ptr<robust::TrainCheckpointer> epoch_ckpt;
    if (ck.enabled && ck.epoch_checkpoints) {
      epoch_ckpt = std::make_unique<robust::TrainCheckpointer>(
          robust::stage_train_state_path(ck.dir, 3));
    }
    sgl_trainer.fit(train, nullptr, epoch_ckpt.get());
    result.sgl_train_seconds = timer.seconds();
    result.sgl_accuracy = sgl_trainer.evaluate(test);
    if (ck.enabled) {
      robust::save_params(snn_->params(), robust::stage_weights_path(ck.dir, 3));
      manifest.stage_completed = 3;
      manifest.sgl_accuracy = result.sgl_accuracy;
      manifest.sgl_train_seconds = result.sgl_train_seconds;
      robust::save_manifest(manifest, robust::manifest_path(ck.dir));
      if (epoch_ckpt) epoch_ckpt->remove();
    }
  }
  ULLSNN_GAUGE_SET("pipeline.sgl_accuracy", result.sgl_accuracy);
  if (config_.verbose) {
    obs::logf(obs::LogLevel::kInfo, "[pipeline] SNN accuracy after SGL: %.4f",
              result.sgl_accuracy);
  }

  return result;
}

void HybridPipeline::run_probed_inference(const data::LabeledImages& test,
                                          const ConversionReport& report) {
  ULLSNN_TRACE_SCOPE("pipeline.probe");
  const TelemetryOptions& tel = config_.telemetry;
  const data::LabeledImages probe_set = head_subset(test, tel.probe_samples);

  obs::SnnRuntimeProbe::Config probe_cfg;
  probe_cfg.keep_step_stats = !tel.probe_jsonl_path.empty();
  obs::SnnRuntimeProbe probe(*snn_, probe_cfg);
  probe.set_layer_mu(per_layer_mu(*snn_, report));
  snn_->reset_stats();
  snn::evaluate_snn(*snn_, probe_set);

  if (!tel.probe_csv_path.empty()) {
    obs::CsvSink csv(tel.probe_csv_path, obs::build_info_comment());
    probe.emit_summary_records(csv);
    csv.flush();
  }
  if (!tel.probe_jsonl_path.empty()) {
    obs::JsonlSink jsonl(tel.probe_jsonl_path);
    probe.emit_summary_records(jsonl);
    probe.emit_step_records(jsonl);
    jsonl.flush();
  }
  if (config_.verbose) {
    obs::logf(obs::LogLevel::kInfo,
              "[pipeline] probed %lld samples: %lld spikes across %zu layers",
              static_cast<long long>(probe.samples()),
              static_cast<long long>(probe.total_spikes()),
              probe.summaries().size());
  }
}

double HybridPipeline::run_conversion_only(const data::LabeledImages& train,
                                           const data::LabeledImages& test) {
  ULLSNN_TRACE_SCOPE("pipeline.conversion_only");
  if (!dnn_) {
    Rng rng(config_.weight_seed);
    dnn_ = build_model(config_.arch, config_.model, rng);
    dnn::TrainConfig dnn_cfg = config_.dnn_train;
    dnn_cfg.verbose = config_.verbose;
    dnn::DnnTrainer dnn_trainer(*dnn_, dnn_cfg);
    dnn_trainer.fit(train);
  }
  snn_ = convert(*dnn_, train, config_.conversion, nullptr);
  return snn::evaluate_snn(*snn_, test);
}

dnn::Sequential& HybridPipeline::dnn() {
  if (!dnn_) throw std::logic_error("HybridPipeline::dnn before run()");
  return *dnn_;
}

snn::SnnNetwork& HybridPipeline::snn() {
  if (!snn_) throw std::logic_error("HybridPipeline::snn before run()");
  return *snn_;
}

}  // namespace ullsnn::core
