// Algorithm 1 of the paper: percentile-driven search for the per-layer
// scaling factors (alpha, beta) that minimize the empirical DNN-vs-SNN
// post-activation gap Delta_{alpha,beta} at a given (low) T.
//
// The SNN threshold becomes V_th = alpha * mu and each spike carries
// amplitude beta * V_th (Eq. 8). The loss decomposes the gap over the three
// segments of Fig. 1(b):
//   Seg-I   0      < p <= alpha*mu : staircase region, p - j*alpha*beta*mu/T
//   Seg-II  alpha*mu < p <= mu     : SNN saturated,    p - alpha*beta*mu
//   Seg-III p > mu                 : both saturated,   mu*(1 - alpha*beta)
//
// Candidate alphas are the percentiles P[j]/mu (finer resolution where the
// skewed density is high — the paper's argument against a linear grid);
// beta sweeps [0, 2] with a configurable step.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/activation_collector.h"

namespace ullsnn::core {

struct ScalingResult {
  float alpha = 1.0F;
  float beta = 1.0F;
  double loss = 0.0;      // signed empirical Delta at the optimum
  double initial_loss = 0.0;  // Delta at (alpha, beta) = (1, 1)
};

/// ComputeLoss of Algorithm 1: signed activation gap accumulated over the
/// percentile samples `P` for the given scaling factors.
double compute_scaling_loss(const std::vector<float>& percentiles, float mu,
                            float alpha, float beta, std::int64_t time_steps);

/// FindScalingFactors of Algorithm 1.
ScalingResult find_scaling_factors(const std::vector<float>& percentiles, float mu,
                                   std::int64_t time_steps, float beta_step = 0.01F);

/// Linear-grid variant used by the percentile-vs-linear ablation: alpha
/// candidates are `grid_points` evenly spaced values in (0, 1].
ScalingResult find_scaling_factors_linear(const std::vector<float>& percentiles,
                                          float mu, std::int64_t time_steps,
                                          std::int64_t grid_points = 100,
                                          float beta_step = 0.01F);

/// Run the chosen search over every site of a profile.
std::vector<ScalingResult> find_all_scaling_factors(const ActivationProfile& profile,
                                                    std::int64_t time_steps,
                                                    float beta_step = 0.01F);

}  // namespace ullsnn::core
