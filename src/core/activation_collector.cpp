#include "src/core/activation_collector.h"

#include <algorithm>
#include <stdexcept>

#include "src/dnn/activations.h"
#include "src/dnn/residual.h"
#include "src/tensor/stats.h"

namespace ullsnn::core {

namespace {

// Record `pre` into `site`, striding to respect the per-site sample budget.
void record(ActivationSite& site, const Tensor& pre, std::int64_t max_samples) {
  site.d_max = std::max(site.d_max, pre.max());
  if (static_cast<std::int64_t>(site.samples.size()) >= max_samples) return;
  const std::int64_t room = max_samples - static_cast<std::int64_t>(site.samples.size());
  const std::int64_t stride = std::max<std::int64_t>(1, pre.numel() / std::max<std::int64_t>(room, 1));
  append_samples(pre, site.samples, stride);
}

// Forward one batch through the model, recording every ThresholdReLU input.
// Mirrors Sequential::forward / ResidualBlock::forward exactly (verified by
// tests comparing outputs). `sites` is created on the first batch.
Tensor instrumented_forward(dnn::Sequential& model, const Tensor& input,
                            std::vector<ActivationSite>& sites, bool first_batch,
                            std::int64_t max_samples) {
  std::size_t site_idx = 0;
  const auto visit = [&](const Tensor& pre, float mu, const std::string& label) {
    if (first_batch) {
      ActivationSite site;
      site.label = label;
      site.mu = mu;
      sites.push_back(std::move(site));
    }
    if (site_idx >= sites.size()) {
      throw std::logic_error("collect_activations: site walk mismatch");
    }
    record(sites[site_idx], pre, max_samples);
    ++site_idx;
  };

  Tensor x = input;
  for (std::int64_t i = 0; i < model.size(); ++i) {
    dnn::Layer& layer = model.layer(i);
    if (auto* act = dynamic_cast<dnn::ThresholdReLU*>(&layer)) {
      visit(x, act->mu(), "site" + std::to_string(site_idx));
      x = act->forward(x, /*train=*/false);
    } else if (auto* block = dynamic_cast<dnn::ResidualBlock*>(&layer)) {
      Tensor main = block->conv1().forward(x, /*train=*/false);
      visit(main, block->act1().mu(), "block" + std::to_string(i) + ".act1");
      main = block->act1().forward(main, /*train=*/false);
      main = block->conv2().forward(main, /*train=*/false);
      Tensor skip = block->has_projection()
                        ? block->projection().forward(x, /*train=*/false)
                        : x;
      main += skip;
      visit(main, block->act2().mu(), "block" + std::to_string(i) + ".act2");
      x = block->act2().forward(main, /*train=*/false);
    } else {
      x = layer.forward(x, /*train=*/false);
    }
  }
  if (site_idx != sites.size()) {
    throw std::logic_error("collect_activations: inconsistent site count across batches");
  }
  return x;
}

}  // namespace

ActivationProfile collect_activations(dnn::Sequential& model,
                                      const data::LabeledImages& calibration,
                                      const CollectorOptions& options) {
  if (calibration.empty()) {
    throw std::invalid_argument("collect_activations: empty calibration set");
  }
  ActivationProfile profile;
  Rng rng(0);
  data::BatchIterator batches(calibration, options.batch_size, rng,
                              /*shuffle_each_epoch=*/false);
  for (std::int64_t b = 0; b < batches.num_batches(); ++b) {
    const data::Batch batch = batches.batch(b);
    instrumented_forward(model, batch.images, profile.sites, b == 0,
                         options.max_samples_per_site);
  }
  for (ActivationSite& site : profile.sites) {
    if (site.samples.empty()) {
      throw std::logic_error("collect_activations: site '" + site.label +
                             "' recorded no samples");
    }
    site.percentiles = percentile_grid(site.samples);
  }
  return profile;
}

}  // namespace ullsnn::core
