// DNN -> SNN conversion (Sec. III-B plus the baselines it is compared to).
//
// All modes copy the DNN weights verbatim into an SnnNetwork with the same
// topology; they differ only in how each IF neuron's threshold / spike
// amplitude / initial charge are derived from the layer's pre-activation
// distribution:
//
//   kOursAlphaBeta      V_th = alpha*mu, amplitude beta*V_th, no bias shift.
//                       (alpha, beta) from Algorithm 1 per layer. The
//                       paper's proposed method.
//   kThresholdReLU      V_th = mu (the trained clip threshold), bias shift
//                       delta = V_th/2T. The "our modification" baseline of
//                       Fig. 2.
//   kMaxAct             V_th = d_max (maximum observed pre-activation), bias
//                       shift. Deng et al. [15]-style conversion; d_max is an
//                       outlier of the skewed distribution, which is exactly
//                       why this fails at low T (Sec. III-A).
//   kPercentileHeuristic V_th = scale * percentile(d, q). The grid-searched
//                       threshold down-scaling heuristics of [16], [24]
//                       (ablation: collapses at T <= 3 even with SGL).
//   kWeightNorm         Diehl/Rueckauer [22][23] data-based weight
//                       normalization: every threshold is 1 and layer l's
//                       weights are rescaled by lambda_{l-1}/lambda_l with
//                       lambda = percentile(d, q) — rate-equivalent to
//                       threshold balancing, provided for completeness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/activation_collector.h"
#include "src/core/scaling_search.h"
#include "src/snn/snn_network.h"

namespace ullsnn::core {

enum class ConversionMode {
  kOursAlphaBeta,
  kThresholdReLU,
  kMaxAct,
  kPercentileHeuristic,
  kWeightNorm,
};

const char* to_string(ConversionMode mode);

struct ConversionConfig {
  ConversionMode mode = ConversionMode::kOursAlphaBeta;
  std::int64_t time_steps = 2;
  float beta_step = 0.01F;            // Algorithm 1 beta grid step
  float heuristic_percentile = 99.0F; // kPercentileHeuristic: quantile q
  float heuristic_scale = 1.0F;       // kPercentileHeuristic: extra scale
  /// Ablation hook: when >= 0, overrides every site's initial-membrane
  /// fraction (e.g. 0.5 re-adds the bias shift to the (alpha, beta) mode the
  /// paper removed it from; 0 strips it from the baselines).
  float bias_fraction_override = -1.0F;
  float leak = 1.0F;                  // 1.0 => IF (conversion target)
  snn::ResetMode reset = snn::ResetMode::kSubtract;  // soft reset (Eq. 4)
  bool train_threshold = true;        // expose V_th / leak to SGL fine-tuning
  bool train_leak = true;
  std::uint64_t dropout_seed = 123;
};

struct SiteScaling {
  float v_threshold = 1.0F;
  float beta = 1.0F;
  float initial_membrane_fraction = 0.0F;
  float alpha = 1.0F;  // recorded for reporting; V_th already includes it
  /// kWeightNorm only: the site's activation norm lambda. Layer l's weights
  /// are copied as W * lambda_{l-1}/lambda_l. 1.0 (no-op) for other modes.
  float norm_factor = 1.0F;
};

struct ConversionReport {
  std::vector<SiteScaling> sites;
  std::vector<ScalingResult> search_results;  // only for kOursAlphaBeta
};

/// Derive per-site thresholds for `mode` from an activation profile.
ConversionReport plan_conversion(const ActivationProfile& profile,
                                 const ConversionConfig& config);

/// Build the spiking twin of `model` with the planned thresholds. The DNN is
/// walked in the same site order as collect_activations. Weights are copied
/// (the SNN owns its parameters; SGL fine-tuning does not disturb the DNN).
std::unique_ptr<snn::SnnNetwork> convert(dnn::Sequential& model,
                                         const ActivationProfile& profile,
                                         const ConversionConfig& config,
                                         ConversionReport* report_out = nullptr);

/// Convenience: collect + plan + build in one call.
std::unique_ptr<snn::SnnNetwork> convert(dnn::Sequential& model,
                                         const data::LabeledImages& calibration,
                                         const ConversionConfig& config,
                                         ConversionReport* report_out = nullptr);

/// Per-layer clip thresholds mu (= V_th / alpha) for a converted network,
/// indexed by SNN layer position; 0 for layers without neurons. Walks the
/// network in the same site order as convert() (a residual block consumes two
/// sites and reports its second — the one governing the block's output).
/// Feed the result to obs::SnnRuntimeProbe::set_layer_mu for live Delta
/// tracking.
std::vector<float> per_layer_mu(snn::SnnNetwork& net, const ConversionReport& report);

}  // namespace ullsnn::core
