// Collects per-layer DNN pre-activation distributions on a calibration set.
//
// A "site" is one ThresholdReLU in forward-traversal order (residual blocks
// contribute two sites: after conv1 and after the join). Sites are ordered
// identically to the IF neurons of the converted SNN, so site k's scaling
// factors configure neuron k (core/converter.h relies on this invariant;
// tests/core/converter_test.cpp pins it).
//
// Each site records: the trained threshold mu, a subsample of pre-activation
// values (the d of Sec. III-A), their percentile grid P[0..100] (Algorithm
// 1's search grid), and d_max (the Deng-style [15] conversion threshold).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/dnn/sequential.h"

namespace ullsnn::core {

struct ActivationSite {
  std::string label;            // e.g. "conv3", "block2.act1", "fc1"
  float mu = 0.0F;              // trained ThresholdReLU threshold
  float d_max = 0.0F;           // maximum observed pre-activation
  std::vector<float> samples;   // subsampled pre-activation values
  std::vector<float> percentiles;  // P[0..100]
};

struct ActivationProfile {
  std::vector<ActivationSite> sites;
};

struct CollectorOptions {
  std::int64_t batch_size = 64;
  /// Per-site sample budget; inputs are strided to stay under it.
  std::int64_t max_samples_per_site = 200000;
};

/// Run `model` over `calibration` in inference mode, recording the input of
/// every ThresholdReLU. The model itself is not modified.
ActivationProfile collect_activations(dnn::Sequential& model,
                                      const data::LabeledImages& calibration,
                                      const CollectorOptions& options = {});

}  // namespace ullsnn::core
