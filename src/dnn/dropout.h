// Inverted dropout. The paper uses dropout (not BatchNorm) as the regularizer
// because the conversion removes biases (Sec. IV-A). For SNN fine-tuning the
// mask must be constant across the T time steps of one sample (spiking layers
// reuse the mask; see snn/spiking_layers.h), which is why the mask generation
// is exposed separately from forward().
#pragma once

#include "src/dnn/module.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {

class Dropout final : public Layer {
 public:
  /// Forks an independent RNG stream from `rng` at construction; the layer
  /// owns its stream, so the argument need not outlive the layer.
  Dropout(float drop_prob, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void clear_cache() override { mask_.clear(); }

  float drop_prob() const { return drop_prob_; }
  /// Unvalidated, for annealing schedules that adjust p mid-training. The
  /// static verifier (verify::check_graph, rule G005) flags p >= 1, where
  /// every activation is zeroed and the downstream network goes dead.
  void set_drop_prob(float drop_prob) { drop_prob_ = drop_prob; }

  /// Draw a fresh mask for `numel` elements (used by spiking wrappers that
  /// must hold the mask fixed across time steps).
  void resample_mask(std::int64_t numel);
  /// Apply the held mask without resampling.
  Tensor apply_mask(const Tensor& input) const;

 private:
  float drop_prob_;
  Rng rng_;
  std::vector<float> mask_;  // 0 or 1/(1-p) per element
};

}  // namespace ullsnn::dnn
