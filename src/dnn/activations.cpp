#include "src/dnn/activations.h"

#include <stdexcept>

namespace ullsnn::dnn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor out = input;
  if (train) mask_.assign(static_cast<std::size_t>(input.numel()), 0);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0F) {
      if (train) mask_[static_cast<std::size_t>(i)] = 1;
    } else {
      out[i] = 0.0F;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (mask_.size() != static_cast<std::size_t>(grad_output.numel())) {
    throw std::logic_error("ReLU::backward without cached forward");
  }
  Tensor grad_input = grad_output;
  for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
    if (mask_[static_cast<std::size_t>(i)] == 0) grad_input[i] = 0.0F;
  }
  return grad_input;
}

ThresholdReLU::ThresholdReLU(float initial_mu) {
  if (initial_mu <= 0.0F) throw std::invalid_argument("ThresholdReLU: mu must be positive");
  mu_.name = "threshold_relu.mu";
  mu_.value = Tensor({1}, initial_mu);
  mu_.grad = Tensor({1});
  mu_.decay = false;
}

Tensor ThresholdReLU::forward(const Tensor& input, bool train) {
  const float mu = mu_.value[0];
  Tensor out = input;
  if (train) region_.assign(static_cast<std::size_t>(input.numel()), 0);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float x = out[i];
    if (x <= 0.0F) {
      out[i] = 0.0F;
    } else if (x >= mu) {
      out[i] = mu;
      if (train) region_[static_cast<std::size_t>(i)] = 2;
    } else {
      if (train) region_[static_cast<std::size_t>(i)] = 1;
    }
  }
  return out;
}

Tensor ThresholdReLU::backward(const Tensor& grad_output) {
  if (region_.size() != static_cast<std::size_t>(grad_output.numel())) {
    throw std::logic_error("ThresholdReLU::backward without cached forward");
  }
  Tensor grad_input = grad_output;
  double mu_grad = 0.0;
  for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
    switch (region_[static_cast<std::size_t>(i)]) {
      case 0:  // x < 0: no gradient
        grad_input[i] = 0.0F;
        break;
      case 1:  // linear region: dy/dx = 1
        break;
      case 2:  // saturated: dy/dmu = 1, dy/dx = 0
        mu_grad += grad_output[i];
        grad_input[i] = 0.0F;
        break;
      default:
        break;
    }
  }
  mu_.grad[0] += static_cast<float>(mu_grad);
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (train) cached_shape_ = input.shape();
  return input.reshape({input.dim(0), -1});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_shape_.empty()) throw std::logic_error("Flatten::backward without forward");
  return grad_output.reshape(cached_shape_);
}

Shape Flatten::output_shape(const Shape& input) const {
  std::int64_t features = 1;
  for (std::size_t i = 1; i < input.size(); ++i) features *= input[i];
  return {input[0], features};
}

}  // namespace ullsnn::dnn
