#include "src/dnn/conv2d.h"

#include <stdexcept>
#include "src/obs/trace.h"

namespace ullsnn::dnn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, Rng& rng) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || pad < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
  spec_.in_channels = in_channels;
  spec_.out_channels = out_channels;
  spec_.kernel = kernel;
  spec_.stride = stride;
  spec_.pad = pad;
  weight_.name = "conv.weight";
  weight_.value = Tensor({out_channels, in_channels, kernel, kernel});
  weight_.grad = Tensor(weight_.value.shape());
  kaiming_normal(weight_.value, in_channels * kernel * kernel, rng);
  if (bias) {
    bias_.name = "conv.bias";
    bias_.value = Tensor({out_channels});
    bias_.grad = Tensor({out_channels});
    bias_.decay = false;
  }
}

void Conv2d::set_bias(Tensor bias) {
  if (bias.shape() != Shape{spec_.out_channels}) {
    throw std::invalid_argument("Conv2d::set_bias: expected [" +
                                std::to_string(spec_.out_channels) + "], got " +
                                shape_to_string(bias.shape()));
  }
  bias_.name = "conv.bias";
  bias_.value = std::move(bias);
  bias_.grad = Tensor({spec_.out_channels});
  bias_.decay = false;
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  ULLSNN_TRACE_SCOPE("dnn.conv2d.forward");
  if (input.rank() != 4) throw std::invalid_argument("Conv2d: input must be NCHW");
  Tensor out(output_shape(input.shape()));
  conv2d_forward(input, weight_.value, bias_.value, out, spec_);
  if (train) cached_input_ = input;
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  ULLSNN_TRACE_SCOPE("dnn.conv2d.backward");
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d::backward without cached forward");
  }
  Tensor grad_input(cached_input_.shape());
  conv2d_backward(cached_input_, weight_.value, grad_output, &grad_input,
                  weight_.grad, has_bias() ? &bias_.grad : nullptr, spec_);
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps = {&weight_};
  if (has_bias()) ps.push_back(&bias_);
  return ps;
}

Shape Conv2d::output_shape(const Shape& input) const {
  return {input[0], spec_.out_channels, spec_.out_extent(input[2]),
          spec_.out_extent(input[3])};
}

std::int64_t Conv2d::macs(const Shape& input) const {
  const std::int64_t oh = spec_.out_extent(input[2]);
  const std::int64_t ow = spec_.out_extent(input[3]);
  // Per output element: Cin*K*K multiply-accumulates; batch excluded (we
  // report per-input-sample FLOPs as the paper does).
  return spec_.out_channels * oh * ow * spec_.in_channels * spec_.kernel * spec_.kernel;
}

}  // namespace ullsnn::dnn
