#include "src/dnn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace ullsnn::dnn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels), momentum_(momentum), epsilon_(epsilon) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels must be positive");
  if (momentum <= 0.0F || momentum > 1.0F) {
    throw std::invalid_argument("BatchNorm2d: momentum must be in (0, 1]");
  }
  gamma_.name = "batchnorm.gamma";
  gamma_.value = Tensor({channels}, 1.0F);
  gamma_.grad = Tensor({channels});
  gamma_.decay = false;
  beta_.name = "batchnorm.beta";
  beta_.value = Tensor({channels});
  beta_.grad = Tensor({channels});
  beta_.decay = false;
  running_mean_ = Tensor({channels});
  running_var_ = Tensor({channels}, 1.0F);
}

void BatchNorm2d::set_running_stats(Tensor mean, Tensor var) {
  if (mean.shape() != Shape{channels_} || var.shape() != Shape{channels_}) {
    throw std::invalid_argument("BatchNorm2d::set_running_stats: bad shapes");
  }
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected [N, " +
                                std::to_string(channels_) + ", H, W], got " +
                                shape_to_string(input.shape()));
  }
  const std::int64_t n = input.dim(0);
  const std::int64_t hw = input.dim(2) * input.dim(3);
  const std::int64_t count = n * hw;
  Tensor out(input.shape());

  Tensor mean({channels_});
  Tensor inv_std({channels_});
  if (train) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * channels_ + c) * hw;
        for (std::int64_t j = 0; j < hw; ++j) sum += p[j];
      }
      const double mu = sum / static_cast<double>(count);
      double var = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * channels_ + c) * hw;
        for (std::int64_t j = 0; j < hw; ++j) {
          const double d = p[j] - mu;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      mean[c] = static_cast<float>(mu);
      inv_std[c] = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
      running_mean_[c] = (1.0F - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mu);
      running_var_[c] =
          (1.0F - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
    }
  } else {
    for (std::int64_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_[c];
      inv_std[c] = 1.0F / std::sqrt(running_var_[c] + epsilon_);
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* p = input.data() + (i * channels_ + c) * hw;
      float* q = out.data() + (i * channels_ + c) * hw;
      const float g = gamma_.value[c] * inv_std[c];
      const float b = beta_.value[c] - mean[c] * g;
      for (std::int64_t j = 0; j < hw; ++j) q[j] = g * p[j] + b;
    }
  }
  if (train) {
    cached_input_ = input;
    batch_mean_ = std::move(mean);
    batch_inv_std_ = std::move(inv_std);
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("BatchNorm2d::backward without cached forward");
  }
  const std::int64_t n = cached_input_.dim(0);
  const std::int64_t hw = cached_input_.dim(2) * cached_input_.dim(3);
  const auto count = static_cast<double>(n * hw);
  Tensor grad_input(cached_input_.shape());
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float mu = batch_mean_[c];
    const float inv_std = batch_inv_std_[c];
    // Accumulate sum(g), sum(g * xhat), and the parameter gradients.
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* x = cached_input_.data() + (i * channels_ + c) * hw;
      const float* g = grad_output.data() + (i * channels_ + c) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        const double xhat = (x[j] - mu) * inv_std;
        sum_g += g[j];
        sum_gx += g[j] * xhat;
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gx);
    beta_.grad[c] += static_cast<float>(sum_g);
    // dL/dx = gamma * inv_std / count * (count*g - sum_g - xhat * sum_gx).
    const double scale = static_cast<double>(gamma_.value[c]) * inv_std / count;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* x = cached_input_.data() + (i * channels_ + c) * hw;
      const float* g = grad_output.data() + (i * channels_ + c) * hw;
      float* gi = grad_input.data() + (i * channels_ + c) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        const double xhat = (x[j] - mu) * inv_std;
        gi[j] = static_cast<float>(scale * (count * g[j] - sum_g - xhat * sum_gx));
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::clear_cache() {
  cached_input_ = Tensor();
  batch_mean_ = Tensor();
  batch_inv_std_ = Tensor();
}

}  // namespace ullsnn::dnn
