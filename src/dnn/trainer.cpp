#include "src/dnn/trainer.h"

#include <stdexcept>

#include "src/dnn/activations.h"
#include "src/dnn/loss.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace ullsnn::dnn {

DnnTrainer::DnnTrainer(Sequential& model, TrainConfig config)
    : model_(&model),
      config_(config),
      optimizer_(model.params(),
                 SgdConfig{config.lr, config.momentum, config.weight_decay}),
      schedule_(config.lr, config.epochs),
      rng_(config.seed) {}

EpochStats DnnTrainer::train_epoch(const data::LabeledImages& train,
                                   std::int64_t epoch) {
  ULLSNN_TRACE_SCOPE("dnn.train_epoch");
  Timer timer;
  optimizer_.set_lr(schedule_.lr_at(epoch) * lr_scale_);
  data::BatchIterator batches(train, config_.batch_size, rng_);
  const data::AugmentSpec aug;
  double loss_sum = 0.0;
  std::int64_t correct = 0;
  std::int64_t seen = 0;
  for (std::int64_t b = 0; b < batches.num_batches(); ++b) {
    data::Batch batch = batches.batch(b);
    if (config_.augment) data::augment_batch(batch, aug, rng_);
    optimizer_.zero_grad();
    const Tensor logits = model_->forward(batch.images, /*train=*/true);
    LossResult loss = softmax_cross_entropy(logits, batch.labels);
    model_->backward(loss.grad);
    // L2 regularizer on the clip thresholds: grad += 2 * lambda * mu.
    if (config_.mu_l2 > 0.0F) {
      for (Param* p : model_->params()) {
        if (p->name == "threshold_relu.mu") {
          p->grad[0] += 2.0F * config_.mu_l2 * p->value[0];
        }
      }
    }
    optimizer_.step();
    // Keep clip thresholds positive: a mu driven to <= 0 silences its layer
    // permanently (zero output and zero gradient — unrecoverable).
    for (Param* p : model_->params()) {
      if (p->name == "threshold_relu.mu" && p->value[0] < 1e-2F) {
        p->value[0] = 1e-2F;
      }
    }
    loss_sum += static_cast<double>(loss.loss) * static_cast<double>(batch.size());
    correct += loss.correct;
    seen += batch.size();
  }
  model_->clear_cache();
  EpochStats stats;
  stats.epoch = epoch;
  stats.train_loss = static_cast<float>(loss_sum / static_cast<double>(seen));
  stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  stats.seconds = timer.seconds();
  return stats;
}

std::vector<EpochStats> DnnTrainer::fit(const data::LabeledImages& train,
                                        const data::LabeledImages* test,
                                        robust::TrainCheckpointer* checkpointer) {
  robust::HealthMonitor monitor(config_.guard);
  std::vector<EpochStats> history;
  history.reserve(static_cast<std::size_t>(config_.epochs));
  std::int64_t start = 0;
  if (checkpointer != nullptr) {
    start = checkpointer->restore(model_->params(), optimizer_.velocity(), rng_);
    if (config_.verbose && start > 0) {
      obs::logf(obs::LogLevel::kInfo, "  [dnn] resuming from epoch %lld (%s)",
                static_cast<long long>(start), checkpointer->path().c_str());
    }
  }
  if (config_.guard.policy == robust::GuardPolicy::kRollback) {
    monitor.snapshot(model_->params(), optimizer_.velocity(), rng_);
  }
  for (std::int64_t e = start; e < config_.epochs;) {
    if (epoch_hook_) epoch_hook_(e);
    EpochStats stats = train_epoch(train, e);
    if (monitor.enabled()) {
      const robust::HealthReport report = monitor.check(model_->params(), stats.train_loss);
      switch (monitor.decide(report)) {
        case robust::GuardAction::kAbort:
          throw std::runtime_error("DnnTrainer: " + report.describe());
        case robust::GuardAction::kRetry:
          monitor.restore(model_->params(), optimizer_.velocity(), rng_);
          lr_scale_ = monitor.lr_scale();
          continue;  // replay the same epoch from the restored state
        case robust::GuardAction::kProceed:
          break;
      }
      if (config_.guard.policy == robust::GuardPolicy::kRollback) {
        monitor.snapshot(model_->params(), optimizer_.velocity(), rng_);
      }
    }
    if (test != nullptr) stats.test_accuracy = evaluate(*test);
    ULLSNN_COUNTER_ADD("dnn.epochs", 1);
    ULLSNN_GAUGE_SET("dnn.train_loss", stats.train_loss);
    ULLSNN_GAUGE_SET("dnn.train_accuracy", stats.train_accuracy);
    ULLSNN_HISTOGRAM_OBSERVE("dnn.epoch_seconds", stats.seconds);
    if (config_.verbose) {
      obs::logf(obs::LogLevel::kInfo,
                "  [dnn] epoch %3lld  loss %.4f  train %.4f  test %.4f  (%.1fs)",
                static_cast<long long>(stats.epoch), stats.train_loss,
                stats.train_accuracy, stats.test_accuracy, stats.seconds);
    }
    history.push_back(stats);
    if (checkpointer != nullptr) {
      checkpointer->save(e + 1, model_->params(), optimizer_.velocity(), rng_);
    }
    ++e;
  }
  return history;
}

double DnnTrainer::evaluate(const data::LabeledImages& dataset) {
  return evaluate_model(*model_, dataset, config_.batch_size);
}

double evaluate_model(Sequential& model, const data::LabeledImages& dataset,
                      std::int64_t batch_size) {
  Rng rng(0);  // unused: evaluation neither shuffles nor augments
  data::BatchIterator batches(dataset, batch_size, rng, /*shuffle_each_epoch=*/false);
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < batches.num_batches(); ++b) {
    const data::Batch batch = batches.batch(b);
    const Tensor logits = model.forward(batch.images, /*train=*/false);
    correct += static_cast<std::int64_t>(
        accuracy(logits, batch.labels) * static_cast<double>(batch.size()) + 0.5);
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace ullsnn::dnn
