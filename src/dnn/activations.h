// Activation layers and shape utilities.
//
// ThresholdReLU is the paper's Eq. (1): y = clip(x, 0, mu) with a trainable
// per-layer threshold mu. Its post-training value becomes the SNN layer
// threshold after alpha-scaling (Sec. III-B). Following the TCL-style
// formulation [20], d(loss)/d(mu) accumulates the output gradient over every
// saturated element. mu is excluded from weight decay (decay=false): decaying
// it would silently shrink the clip range; the trainer applies an explicit
// lambda_mu * mu^2 regularizer instead when one is requested.
#pragma once

#include "src/dnn/module.h"

namespace ullsnn::dnn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void clear_cache() override { mask_.clear(); }

 private:
  std::vector<unsigned char> mask_;
};

class ThresholdReLU final : public Layer {
 public:
  explicit ThresholdReLU(float initial_mu = 1.0F);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&mu_}; }
  std::string name() const override { return "ThresholdReLU"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void clear_cache() override { region_.clear(); }

  float mu() const { return mu_.value[0]; }
  void set_mu(float mu) { mu_.value[0] = mu; }
  Param& mu_param() { return mu_; }

 private:
  Param mu_;  // scalar, shape [1]
  // Per-element region of the clip: 0 => x<0, 1 => linear, 2 => saturated.
  std::vector<unsigned char> region_;
};

/// [N,C,H,W] -> [N, C*H*W]; pure reshape, gradients pass through.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }
  Shape output_shape(const Shape& input) const override;

 private:
  Shape cached_shape_;
};

}  // namespace ullsnn::dnn
