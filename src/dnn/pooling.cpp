#include "src/dnn/pooling.h"

#include <stdexcept>

namespace ullsnn::dnn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride) {
  if (kernel <= 0 || stride <= 0) throw std::invalid_argument("MaxPool2d: invalid geometry");
  spec_.kernel = kernel;
  spec_.stride = stride;
}

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  validate_pool_geometry(spec_, input.dim(2), input.dim(3));
  Tensor out(output_shape(input.shape()));
  maxpool2d_forward(input, out, argmax_, spec_);
  if (train) cached_input_shape_ = input.shape();
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) {
    throw std::logic_error("MaxPool2d::backward without cached forward");
  }
  Tensor grad_input(cached_input_shape_);
  maxpool2d_backward(grad_output, argmax_, grad_input);
  return grad_input;
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  return {input[0], input[1], spec_.out_extent(input[2]), spec_.out_extent(input[3])};
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride) {
  if (kernel <= 0 || stride <= 0) throw std::invalid_argument("AvgPool2d: invalid geometry");
  spec_.kernel = kernel;
  spec_.stride = stride;
}

Tensor AvgPool2d::forward(const Tensor& input, bool train) {
  validate_pool_geometry(spec_, input.dim(2), input.dim(3));
  Tensor out(output_shape(input.shape()));
  avgpool2d_forward(input, out, spec_);
  if (train) cached_input_shape_ = input.shape();
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) {
    throw std::logic_error("AvgPool2d::backward without cached forward");
  }
  Tensor grad_input(cached_input_shape_);
  avgpool2d_backward(grad_output, grad_input, spec_);
  return grad_input;
}

Shape AvgPool2d::output_shape(const Shape& input) const {
  return {input[0], input[1], spec_.out_extent(input[2]), spec_.out_extent(input[3])};
}

}  // namespace ullsnn::dnn
