// 2-D Batch Normalization.
//
// The paper's own pipeline deliberately avoids BN (conversion drops biases,
// Sec. IV-A), but the baselines it compares against — Deng et al. [15], the
// calibration heuristics [16] — are BN networks whose conversion first FOLDS
// BN into the preceding convolution. This layer plus core/bn_fold.h make the
// baseline library complete: train with BN, fold, then convert with any mode.
//
// Standard train-time batch statistics with running-average tracking for
// inference; the backward pass is the exact batch-statistics gradient.
#pragma once

#include "src/dnn/module.h"

namespace ullsnn::dnn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1F,
                       float epsilon = 1e-5F);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "BatchNorm2d"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void clear_cache() override;

  std::int64_t channels() const { return channels_; }
  Param& gamma() { return gamma_; }
  const Param& gamma() const { return gamma_; }
  Param& beta() { return beta_; }
  const Param& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  float epsilon() const { return epsilon_; }

  /// Overwrite the running statistics (used by tests and BN folding).
  void set_running_stats(Tensor mean, Tensor var);

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;
  Param gamma_;  // [C] scale
  Param beta_;   // [C] shift
  Tensor running_mean_;  // [C]
  Tensor running_var_;   // [C]
  // Backward caches (batch statistics of the cached forward).
  Tensor cached_input_;
  Tensor batch_mean_;     // [C]
  Tensor batch_inv_std_;  // [C]
};

}  // namespace ullsnn::dnn
