// Pooling layers. The paper deliberately uses max pooling (Sec. IV-A): on
// binary spike maps, max pooling emits binary outputs, keeping every hidden
// layer accumulate-only. Average pooling is provided for the ablation.
#pragma once

#include "src/dnn/module.h"
#include "src/tensor/ops.h"

namespace ullsnn::dnn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t kernel = 2, std::int64_t stride = 2);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }
  Shape output_shape(const Shape& input) const override;
  void clear_cache() override { argmax_.clear(); }

  const Pool2dSpec& spec() const { return spec_; }

 private:
  Pool2dSpec spec_;
  std::vector<std::int64_t> argmax_;
  Shape cached_input_shape_;
};

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int64_t kernel = 2, std::int64_t stride = 2);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }
  Shape output_shape(const Shape& input) const override;

  const Pool2dSpec& spec() const { return spec_; }

 private:
  Pool2dSpec spec_;
  Shape cached_input_shape_;
};

}  // namespace ullsnn::dnn
