// Fully-connected layer: y = x W^T (+ b). Input [N, in], output [N, out].
#pragma once

#include "src/dnn/module.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Linear"; }
  Shape output_shape(const Shape& input) const override;
  std::int64_t macs(const Shape& input) const override;
  void clear_cache() override { cached_input_ = Tensor(); }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  bool has_bias() const { return !bias_.value.empty(); }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_ = 0;
  std::int64_t out_ = 0;
  Param weight_;  // [out, in]
  Param bias_;    // [out] or empty
  Tensor cached_input_;
};

}  // namespace ullsnn::dnn
