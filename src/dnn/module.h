// Layer abstraction for the from-scratch DNN library.
//
// The library uses explicit layer-local backward passes (define-by-run with a
// per-layer cache) rather than a general autograd graph: every architecture
// in the paper is a feed-forward chain plus residual blocks, and explicit
// backward keeps the BPTT-through-time SNN trainer transparent and testable
// against finite differences.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace ullsnn::dnn {

/// A trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Parameters flagged false are excluded from weight decay (thresholds,
  /// leaks, biases — decaying those changes the model semantics).
  bool decay = true;

  void zero_grad() { grad.fill(0.0F); }
};

class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Compute outputs; `train` enables stochastic behaviour (dropout) and
  /// caching for backward. Inference calls with train=false may skip caches.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Gradient w.r.t. the layer input, given gradient w.r.t. its output.
  /// Accumulates parameter gradients into params()[i]->grad.
  /// Must be preceded by forward(..., train=true) on the same input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Shape of the output given an input shape (excluding any batch effects:
  /// pass the full [N, ...] shape; N is preserved).
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Multiply-accumulate count of one forward pass at the given input shape
  /// (0 for non-arithmetic layers). Used by the FLOPs/energy accounting.
  virtual std::int64_t macs(const Shape& input) const { (void)input; return 0; }

  /// Release cached forward tensors (after an optimizer step, or to bound
  /// memory during pure inference).
  virtual void clear_cache() {}

  /// Immediate sub-layers, in execution order; empty for leaf layers. The
  /// pointers stay owned by this layer. Graph walks (verify/, introspection
  /// tooling) use this to descend into containers without knowing their
  /// concrete types.
  virtual std::vector<Layer*> children() { return {}; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace ullsnn::dnn
