// Softmax cross-entropy with integer class labels.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace ullsnn::dnn {

struct LossResult {
  float loss = 0.0F;       // mean over the batch
  Tensor grad;             // d(loss)/d(logits), [N, C]
  std::int64_t correct = 0;  // top-1 hits in the batch
};

/// Numerically-stable softmax cross-entropy over logits [N, C].
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

/// Softmax probabilities (row-wise), mainly for inspection/tests.
Tensor softmax(const Tensor& logits);

/// Top-1 accuracy of logits against labels, in [0, 1].
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace ullsnn::dnn
