// Post-activation residual block for ResNet-20/32 (He et al. [18]), without
// BatchNorm (the paper's conversion removes biases and uses Dropout instead,
// Sec. IV-A):
//
//   main: Conv3x3(stride s) -> ThresholdReLU -> Conv3x3(stride 1)
//   skip: identity, or Conv1x1(stride s) when the shape changes
//   out:  ThresholdReLU(main + skip)
//
// Both ThresholdReLUs convert to IF neurons; the join becomes a membrane-
// potential addition in the spiking version (snn/spiking_layers.h).
#pragma once

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/module.h"

namespace ullsnn::dnn {

class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, float initial_mu, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "ResidualBlock"; }
  Shape output_shape(const Shape& input) const override;
  std::int64_t macs(const Shape& input) const override;
  void clear_cache() override;
  std::vector<Layer*> children() override;

  Conv2d& conv1() { return conv1_; }
  Conv2d& conv2() { return conv2_; }
  bool has_projection() const { return projection_ != nullptr; }
  Conv2d& projection() { return *projection_; }
  ThresholdReLU& act1() { return act1_; }
  ThresholdReLU& act2() { return act2_; }

 private:
  Conv2d conv1_;
  ThresholdReLU act1_;
  Conv2d conv2_;
  std::unique_ptr<Conv2d> projection_;  // null => identity skip
  ThresholdReLU act2_;
};

}  // namespace ullsnn::dnn
