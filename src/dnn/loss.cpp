#include "src/dnn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ullsnn::dnn {

namespace {
void check_labels(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("loss: logits must be [N, C]");
  if (logits.dim(0) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("loss: batch size mismatch");
  }
  for (std::int64_t label : labels) {
    if (label < 0 || label >= logits.dim(1)) {
      throw std::invalid_argument("loss: label out of range");
    }
  }
}
}  // namespace

Tensor softmax(const Tensor& logits) {
  Tensor probs = logits;
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = probs.data() + i * c;
    const float row_max = *std::max_element(row, row + c);
    float sum = 0.0F;
    for (std::int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - row_max);
      sum += row[j];
    }
    const float inv = 1.0F / sum;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  check_labels(logits, labels);
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  LossResult result;
  result.grad = softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = result.grad.data() + i * c;
    const std::int64_t label = labels[static_cast<std::size_t>(i)];
    loss -= std::log(std::max(row[label], 1e-12F));
    // argmax before mutating the row
    const std::int64_t pred =
        std::distance(row, std::max_element(row, row + c));
    if (pred == label) ++result.correct;
    row[label] -= 1.0F;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
  }
  result.loss = static_cast<float>(loss / static_cast<double>(n));
  return result;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check_labels(logits, labels);
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const std::int64_t pred = std::distance(row, std::max_element(row, row + c));
    if (pred == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace ullsnn::dnn
