#include "src/dnn/loss.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ullsnn::dnn {

namespace {
void check_labels(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("loss: logits must be [N, C]");
  if (logits.dim(0) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("loss: batch size mismatch");
  }
  for (std::int64_t label : labels) {
    if (label < 0 || label >= logits.dim(1)) {
      throw std::invalid_argument("loss: label out of range");
    }
  }
}
}  // namespace

Tensor softmax(const Tensor& logits) {
  Tensor probs = logits;
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  const float uniform = 1.0F / static_cast<float>(c);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = probs.data() + i * c;
    // Degenerate rows (any NaN, or every logit -inf) carry no preference
    // ordering; fall back to the uniform distribution rather than emitting
    // NaN probabilities that would poison the gradients of the whole batch.
    bool has_nan = false;
    bool has_pos_inf = false;
    float row_max = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < c; ++j) {
      if (std::isnan(row[j])) has_nan = true;
      if (row[j] == std::numeric_limits<float>::infinity()) has_pos_inf = true;
      row_max = std::max(row_max, row[j]);
    }
    if (has_nan || row_max == -std::numeric_limits<float>::infinity()) {
      for (std::int64_t j = 0; j < c; ++j) row[j] = uniform;
      continue;
    }
    if (has_pos_inf) {
      // exp(inf - inf) is NaN; the limit distribution puts all mass on the
      // +inf entries, split evenly among ties.
      float count = 0.0F;
      for (std::int64_t j = 0; j < c; ++j) {
        row[j] = (row[j] == std::numeric_limits<float>::infinity()) ? 1.0F : 0.0F;
        count += row[j];
      }
      for (std::int64_t j = 0; j < c; ++j) row[j] /= count;
      continue;
    }
    float sum = 0.0F;
    for (std::int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - row_max);
      sum += row[j];
    }
    // row_max is finite, so exp(0) = 1 is in the sum and it cannot be zero;
    // the guard is belt-and-braces against denormal-flushing math modes.
    if (!(sum > 0.0F)) {
      for (std::int64_t j = 0; j < c; ++j) row[j] = uniform;
      continue;
    }
    const float inv = 1.0F / sum;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  check_labels(logits, labels);
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  LossResult result;
  result.grad = softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = result.grad.data() + i * c;
    const std::int64_t label = labels[static_cast<std::size_t>(i)];
    loss -= std::log(std::max(row[label], 1e-12F));
    // argmax before mutating the row
    const std::int64_t pred =
        std::distance(row, std::max_element(row, row + c));
    if (pred == label) ++result.correct;
    row[label] -= 1.0F;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
  }
  result.loss = static_cast<float>(loss / static_cast<double>(n));
  return result;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check_labels(logits, labels);
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const std::int64_t pred = std::distance(row, std::max_element(row, row + c));
    if (pred == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace ullsnn::dnn
