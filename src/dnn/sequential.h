// Sequential container: an ordered chain of layers with joint forward /
// backward, parameter enumeration, and layer introspection (the conversion
// code walks the chain to pair each Conv2d/Linear with its ThresholdReLU).
#pragma once

#include <memory>
#include <vector>

#include "src/dnn/module.h"

namespace ullsnn::dnn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference typed as the concrete layer for
  /// fluent model building.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  /// Transfer ownership of all layers out (used by graph rewrites such as
  /// BatchNorm folding); the Sequential is left empty.
  std::vector<LayerPtr> release_layers() { return std::move(layers_); }

  std::int64_t size() const { return static_cast<std::int64_t>(layers_.size()); }
  bool empty() const { return layers_.empty(); }
  Layer& layer(std::int64_t i) { return *layers_[static_cast<std::size_t>(i)]; }
  const Layer& layer(std::int64_t i) const { return *layers_[static_cast<std::size_t>(i)]; }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Sequential"; }
  Shape output_shape(const Shape& input) const override;
  std::int64_t macs(const Shape& input) const override;
  void clear_cache() override;
  std::vector<Layer*> children() override;

  /// Per-layer MAC counts at the given input shape (index-aligned with the
  /// chain). Non-arithmetic layers report 0.
  std::vector<std::int64_t> per_layer_macs(const Shape& input) const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace ullsnn::dnn
