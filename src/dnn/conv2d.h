// 2-D convolution layer (NCHW, square kernels).
#pragma once

#include "src/dnn/module.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {

class Conv2d final : public Layer {
 public:
  /// Kaiming-normal weight init. `bias` adds a per-output-channel bias; the
  /// paper's conversion pipeline uses bias-free convs (Sec. III-B removes the
  /// bias term), so model builders default it off.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2d"; }
  Shape output_shape(const Shape& input) const override;
  std::int64_t macs(const Shape& input) const override;
  void clear_cache() override { cached_input_ = Tensor(); }

  const Conv2dSpec& spec() const { return spec_; }
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  bool has_bias() const { return !bias_.value.empty(); }
  Param& bias() { return bias_; }
  /// Install (or overwrite) a per-output-channel bias; used by BN folding.
  void set_bias(Tensor bias);

 private:
  Conv2dSpec spec_;
  Param weight_;  // [Cout, Cin, K, K]
  Param bias_;    // [Cout] or empty
  Tensor cached_input_;
};

}  // namespace ullsnn::dnn
