// DNN training loop (stage (a) of the paper's pipeline, Sec. IV-A):
// SGD + momentum, step-decay LR at 60/80/90% of epochs, pad-4 crop + flip
// augmentation, and an optional L2 pull on the ThresholdReLU thresholds to
// keep them near the bulk of the pre-activation distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/augment.h"
#include "src/data/dataset.h"
#include "src/dnn/optimizer.h"
#include "src/dnn/sequential.h"
#include "src/robust/checkpoint.h"
#include "src/robust/health.h"

namespace ullsnn::dnn {

struct TrainConfig {
  std::int64_t epochs = 20;
  std::int64_t batch_size = 32;
  float lr = 0.01F;
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
  /// L2 coefficient on thresholds mu (applied separately from weight decay).
  float mu_l2 = 1e-3F;
  bool augment = true;
  std::uint64_t seed = 7;
  bool verbose = false;
  /// Per-epoch numeric health guard (NaN/Inf/explosion in loss, weights, and
  /// gradients). kOff by default: no checks, no overhead.
  robust::GuardConfig guard;
};

struct EpochStats {
  std::int64_t epoch = 0;
  float train_loss = 0.0F;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double seconds = 0.0;
};

class DnnTrainer {
 public:
  DnnTrainer(Sequential& model, TrainConfig config);

  /// One pass over `train`; applies the schedule's LR for `epoch` (times any
  /// health-guard backoff accumulated by fit()'s rollbacks).
  EpochStats train_epoch(const data::LabeledImages& train, std::int64_t epoch);

  /// Full run; evaluates on `test` after each epoch when provided. With a
  /// checkpointer, restores any saved state first (resuming from the last
  /// completed epoch) and persists weights + momentum + RNG after each epoch.
  /// With config.guard.policy != kOff, every epoch is health-checked; under
  /// kRollback an unhealthy epoch is undone and retried at a reduced LR.
  std::vector<EpochStats> fit(const data::LabeledImages& train,
                              const data::LabeledImages* test = nullptr,
                              robust::TrainCheckpointer* checkpointer = nullptr);

  /// Top-1 accuracy of the model on `dataset` (inference mode).
  double evaluate(const data::LabeledImages& dataset);

  Sequential& model() { return *model_; }

  /// Invoked at the top of every fit() epoch with the epoch index. Test and
  /// fault-injection hook: lets a harness perturb state mid-run.
  void set_epoch_hook(std::function<void(std::int64_t)> hook) {
    epoch_hook_ = std::move(hook);
  }

 private:
  Sequential* model_;
  TrainConfig config_;
  Sgd optimizer_;
  StepDecaySchedule schedule_;
  Rng rng_;
  float lr_scale_ = 1.0F;  // health-guard backoff, applied on top of the schedule
  std::function<void(std::int64_t)> epoch_hook_;
};

/// Standalone top-1 evaluation of any model (used for converted SNNs' source
/// DNNs and in tests).
double evaluate_model(Sequential& model, const data::LabeledImages& dataset,
                      std::int64_t batch_size = 64);

}  // namespace ullsnn::dnn
