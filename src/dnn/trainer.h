// DNN training loop (stage (a) of the paper's pipeline, Sec. IV-A):
// SGD + momentum, step-decay LR at 60/80/90% of epochs, pad-4 crop + flip
// augmentation, and an optional L2 pull on the ThresholdReLU thresholds to
// keep them near the bulk of the pre-activation distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/augment.h"
#include "src/data/dataset.h"
#include "src/dnn/optimizer.h"
#include "src/dnn/sequential.h"

namespace ullsnn::dnn {

struct TrainConfig {
  std::int64_t epochs = 20;
  std::int64_t batch_size = 32;
  float lr = 0.01F;
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
  /// L2 coefficient on thresholds mu (applied separately from weight decay).
  float mu_l2 = 1e-3F;
  bool augment = true;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct EpochStats {
  std::int64_t epoch = 0;
  float train_loss = 0.0F;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double seconds = 0.0;
};

class DnnTrainer {
 public:
  DnnTrainer(Sequential& model, TrainConfig config);

  /// One pass over `train`; applies the schedule's LR for `epoch`.
  EpochStats train_epoch(const data::LabeledImages& train, std::int64_t epoch);

  /// Full run; evaluates on `test` after each epoch when provided.
  std::vector<EpochStats> fit(const data::LabeledImages& train,
                              const data::LabeledImages* test = nullptr);

  /// Top-1 accuracy of the model on `dataset` (inference mode).
  double evaluate(const data::LabeledImages& dataset);

  Sequential& model() { return *model_; }

 private:
  Sequential* model_;
  TrainConfig config_;
  Sgd optimizer_;
  StepDecaySchedule schedule_;
  Rng rng_;
};

/// Standalone top-1 evaluation of any model (used for converted SNNs' source
/// DNNs and in tests).
double evaluate_model(Sequential& model, const data::LabeledImages& dataset,
                      std::int64_t batch_size = 64);

}  // namespace ullsnn::dnn
