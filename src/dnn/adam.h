// Adam optimizer (Kingma & Ba) with optional decoupled weight decay (AdamW).
//
// The paper trains with SGD + momentum, but Adam is the de-facto choice for
// SNN fine-tuning in downstream work (and materially stabilizes the
// from-scratch surrogate baseline of Table II), so the library provides it.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/module.h"

namespace ullsnn::dnn {

struct AdamConfig {
  float lr = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float epsilon = 1e-8F;
  /// Decoupled (AdamW-style) weight decay; 0 disables. Applied only to
  /// params with decay == true.
  float weight_decay = 0.0F;
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config);

  void zero_grad();
  void step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  std::int64_t steps_taken() const { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  AdamConfig config_;
  std::int64_t t_ = 0;
};

}  // namespace ullsnn::dnn
