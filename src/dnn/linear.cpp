#include "src/dnn/linear.h"

#include <stdexcept>
#include "src/obs/trace.h"

#include "src/tensor/ops.h"

namespace ullsnn::dnn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias, Rng& rng)
    : in_(in_features), out_(out_features) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: feature counts must be positive");
  }
  weight_.name = "linear.weight";
  weight_.value = Tensor({out_, in_});
  weight_.grad = Tensor({out_, in_});
  kaiming_normal(weight_.value, in_, rng);
  if (bias) {
    bias_.name = "linear.bias";
    bias_.value = Tensor({out_});
    bias_.grad = Tensor({out_});
    bias_.decay = false;
  }
}

Tensor Linear::forward(const Tensor& input, bool train) {
  ULLSNN_TRACE_SCOPE("dnn.linear.forward");
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected [N, " + std::to_string(in_) +
                                "], got " + shape_to_string(input.shape()));
  }
  const std::int64_t n = input.dim(0);
  Tensor out({n, out_});
  // out[N,out] = input[N,in] * W^T[in,out]
  matmul_bt(input.data(), weight_.value.data(), out.data(), n, in_, out_);
  if (has_bias()) {
    for (std::int64_t i = 0; i < n; ++i) {
      float* row = out.data() + i * out_;
      for (std::int64_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
    }
  }
  if (train) cached_input_ = input;
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  ULLSNN_TRACE_SCOPE("dnn.linear.backward");
  if (cached_input_.empty()) {
    throw std::logic_error("Linear::backward without cached forward");
  }
  const std::int64_t n = cached_input_.dim(0);
  // dW[out,in] += gout^T[out,N] * x[N,in]
  matmul_at(grad_output.data(), cached_input_.data(), weight_.grad.data(), out_, n,
            in_, /*accumulate=*/true);
  if (has_bias()) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = grad_output.data() + i * out_;
      for (std::int64_t j = 0; j < out_; ++j) bias_.grad[j] += row[j];
    }
  }
  // dx[N,in] = gout[N,out] * W[out,in]
  Tensor grad_input({n, in_});
  matmul(grad_output.data(), weight_.value.data(), grad_input.data(), n, out_, in_);
  return grad_input;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps = {&weight_};
  if (has_bias()) ps.push_back(&bias_);
  return ps;
}

Shape Linear::output_shape(const Shape& input) const { return {input[0], out_}; }

std::int64_t Linear::macs(const Shape& input) const {
  (void)input;
  return in_ * out_;
}

}  // namespace ullsnn::dnn
