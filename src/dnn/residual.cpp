#include "src/dnn/residual.h"

namespace ullsnn::dnn {

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, float initial_mu, Rng& rng)
    : conv1_(in_channels, out_channels, 3, stride, 1, /*bias=*/false, rng),
      act1_(initial_mu),
      conv2_(out_channels, out_channels, 3, 1, 1, /*bias=*/false, rng),
      act2_(initial_mu) {
  if (stride != 1 || in_channels != out_channels) {
    projection_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0,
                                           /*bias=*/false, rng);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  Tensor main = conv2_.forward(act1_.forward(conv1_.forward(input, train), train), train);
  Tensor skip = projection_ ? projection_->forward(input, train) : input;
  main += skip;
  return act2_.forward(main, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  const Tensor g_sum = act2_.backward(grad_output);
  // Main branch.
  Tensor g_in = conv1_.backward(act1_.backward(conv2_.backward(g_sum)));
  // Skip branch.
  if (projection_) {
    g_in += projection_->backward(g_sum);
  } else {
    g_in += g_sum;
  }
  return g_in;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> ps;
  for (Param* p : conv1_.params()) ps.push_back(p);
  for (Param* p : act1_.params()) ps.push_back(p);
  for (Param* p : conv2_.params()) ps.push_back(p);
  if (projection_) {
    for (Param* p : projection_->params()) ps.push_back(p);
  }
  for (Param* p : act2_.params()) ps.push_back(p);
  return ps;
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  return conv2_.output_shape(conv1_.output_shape(input));
}

std::int64_t ResidualBlock::macs(const Shape& input) const {
  const Shape mid = conv1_.output_shape(input);
  std::int64_t total = conv1_.macs(input) + conv2_.macs(mid);
  if (projection_) total += projection_->macs(input);
  return total;
}

void ResidualBlock::clear_cache() {
  conv1_.clear_cache();
  act1_.clear_cache();
  conv2_.clear_cache();
  if (projection_) projection_->clear_cache();
  act2_.clear_cache();
}

std::vector<Layer*> ResidualBlock::children() {
  std::vector<Layer*> out{&conv1_, &act1_, &conv2_};
  if (projection_) out.push_back(projection_.get());
  out.push_back(&act2_);
  return out;
}

}  // namespace ullsnn::dnn
