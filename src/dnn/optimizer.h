// SGD with momentum and decoupled weight decay, plus the paper's step-decay
// learning-rate schedule (x0.1 at 60%, 80%, and 90% of total epochs,
// Sec. IV-A).
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/module.h"

namespace ullsnn::dnn {

struct SgdConfig {
  float lr = 0.01F;
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  void zero_grad();
  void step();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  const SgdConfig& config() const { return config_; }

  /// Momentum buffers, index-aligned with the params passed at construction.
  /// Exposed so checkpoint/resume and health-guard rollback can round-trip
  /// the optimizer state together with the weights.
  std::vector<Tensor>& velocity() { return velocity_; }
  const std::vector<Tensor>& velocity() const { return velocity_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;  // index-aligned with params_
  SgdConfig config_;
};

/// Step-decay schedule: lr = base * gamma^(number of passed milestones),
/// milestones given as fractions of total_epochs.
class StepDecaySchedule {
 public:
  StepDecaySchedule(float base_lr, std::int64_t total_epochs,
                    std::vector<double> milestone_fractions = {0.6, 0.8, 0.9},
                    float gamma = 0.1F);

  float lr_at(std::int64_t epoch) const;

 private:
  float base_lr_;
  std::vector<std::int64_t> milestones_;
  float gamma_;
};

}  // namespace ullsnn::dnn
