#include "src/dnn/dropout.h"

#include <stdexcept>

namespace ullsnn::dnn {

Dropout::Dropout(float drop_prob, Rng& rng)
    : drop_prob_(drop_prob), rng_(rng.split()) {
  if (drop_prob < 0.0F || drop_prob >= 1.0F) {
    throw std::invalid_argument("Dropout: drop_prob must be in [0, 1)");
  }
}

void Dropout::resample_mask(std::int64_t numel) {
  mask_.resize(static_cast<std::size_t>(numel));
  const float keep_scale = 1.0F / (1.0F - drop_prob_);
  for (auto& m : mask_) m = rng_.bernoulli(drop_prob_) ? 0.0F : keep_scale;
}

Tensor Dropout::apply_mask(const Tensor& input) const {
  if (mask_.size() != static_cast<std::size_t>(input.numel())) {
    throw std::logic_error("Dropout::apply_mask: mask size mismatch");
  }
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] *= mask_[static_cast<std::size_t>(i)];
  }
  return out;
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || drop_prob_ == 0.0F) return input;
  resample_mask(input.numel());
  return apply_mask(input);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (drop_prob_ == 0.0F) return grad_output;
  if (mask_.size() != static_cast<std::size_t>(grad_output.numel())) {
    throw std::logic_error("Dropout::backward without cached forward");
  }
  return apply_mask(grad_output);
}

}  // namespace ullsnn::dnn
