#include "src/dnn/models.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/dnn/activations.h"
#include "src/dnn/conv2d.h"
#include "src/dnn/dropout.h"
#include "src/dnn/linear.h"
#include "src/dnn/pooling.h"
#include "src/dnn/residual.h"

namespace ullsnn::dnn {

namespace {
constexpr std::int64_t kPool = -1;  // sentinel for a max-pool entry

std::int64_t scaled(std::int64_t channels, float width) {
  return std::max<std::int64_t>(
      4, static_cast<std::int64_t>(std::lround(static_cast<double>(channels) * width)));
}

std::vector<std::int64_t> vgg_plan(int depth) {
  switch (depth) {
    case 11:
      return {64, kPool, 128, kPool, 256, 256, kPool, 512, 512, kPool, 512, 512, kPool};
    case 13:
      return {64, 64, kPool, 128, 128, kPool, 256, 256, kPool,
              512, 512, kPool, 512, 512, kPool};
    case 16:
      return {64, 64, kPool, 128, 128, kPool, 256, 256, 256, kPool,
              512, 512, 512, kPool, 512, 512, 512, kPool};
    default:
      throw std::invalid_argument("build_vgg: unsupported depth " + std::to_string(depth));
  }
}
}  // namespace

std::unique_ptr<Sequential> build_vgg(int depth, const ModelConfig& config, Rng& rng) {
  auto model = std::make_unique<Sequential>();
  std::int64_t in_ch = config.in_channels;
  std::int64_t spatial = config.image_size;
  for (std::int64_t entry : vgg_plan(depth)) {
    if (entry == kPool) {
      if (config.use_avg_pool) {
        model->emplace<AvgPool2d>(2, 2);
      } else {
        model->emplace<MaxPool2d>(2, 2);
      }
      spatial /= 2;
      continue;
    }
    const std::int64_t out_ch = scaled(entry, config.width);
    model->emplace<Conv2d>(in_ch, out_ch, 3, 1, 1, /*bias=*/false, rng);
    model->emplace<ThresholdReLU>(config.initial_mu);
    if (config.conv_dropout > 0.0F) model->emplace<Dropout>(config.conv_dropout, rng);
    in_ch = out_ch;
  }
  if (spatial < 1) {
    throw std::invalid_argument("build_vgg: image_size too small for depth " +
                                std::to_string(depth));
  }
  const std::int64_t features = in_ch * spatial * spatial;
  const std::int64_t hidden =
      config.fc_hidden > 0 ? config.fc_hidden : scaled(4096, config.width);
  model->emplace<Flatten>();
  model->emplace<Linear>(features, hidden, /*bias=*/false, rng);
  model->emplace<ThresholdReLU>(config.initial_mu);
  if (config.dropout > 0.0F) model->emplace<Dropout>(config.dropout, rng);
  model->emplace<Linear>(hidden, hidden, /*bias=*/false, rng);
  model->emplace<ThresholdReLU>(config.initial_mu);
  if (config.dropout > 0.0F) model->emplace<Dropout>(config.dropout, rng);
  model->emplace<Linear>(hidden, config.num_classes, /*bias=*/false, rng);
  return model;
}

std::unique_ptr<Sequential> build_resnet(int depth, const ModelConfig& config, Rng& rng) {
  std::int64_t blocks_per_stage = 0;
  switch (depth) {
    case 20: blocks_per_stage = 3; break;
    case 32: blocks_per_stage = 5; break;
    default:
      throw std::invalid_argument("build_resnet: unsupported depth " + std::to_string(depth));
  }
  auto model = std::make_unique<Sequential>();
  const std::int64_t c16 = scaled(16, config.width);
  const std::int64_t c32 = scaled(32, config.width);
  const std::int64_t c64 = scaled(64, config.width);
  model->emplace<Conv2d>(config.in_channels, c16, 3, 1, 1, /*bias=*/false, rng);
  model->emplace<ThresholdReLU>(config.initial_mu);
  std::int64_t in_ch = c16;
  std::int64_t spatial = config.image_size;
  const std::int64_t stage_channels[3] = {c16, c32, c64};
  // Without BatchNorm, residual variance grows linearly with depth; a
  // fixup-style downscale of each block's second conv (by 1/sqrt(total
  // blocks)) keeps the forward signal bounded so the net trains.
  const float fixup =
      1.0F / std::sqrt(static_cast<float>(3 * blocks_per_stage));
  for (int stage = 0; stage < 3; ++stage) {
    for (std::int64_t b = 0; b < blocks_per_stage; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      auto& block = model->emplace<ResidualBlock>(in_ch, stage_channels[stage],
                                                  stride, config.initial_mu, rng);
      block.conv2().weight().value *= fixup;
      in_ch = stage_channels[stage];
      if (stride == 2) spatial /= 2;
    }
  }
  // Global average pool, then the classifier.
  model->emplace<AvgPool2d>(spatial, spatial);
  model->emplace<Flatten>();
  if (config.dropout > 0.0F) model->emplace<Dropout>(config.dropout, rng);
  model->emplace<Linear>(in_ch, config.num_classes, /*bias=*/false, rng);
  return model;
}

std::int64_t parameter_count(Sequential& model) {
  std::int64_t total = 0;
  for (const Param* p : model.params()) total += p->value.numel();
  return total;
}

}  // namespace ullsnn::dnn
