#include "src/dnn/sequential.h"

namespace ullsnn::dnn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

std::int64_t Sequential::macs(const Shape& input) const {
  std::int64_t total = 0;
  Shape s = input;
  for (const auto& layer : layers_) {
    total += layer->macs(s);
    s = layer->output_shape(s);
  }
  return total;
}

std::vector<std::int64_t> Sequential::per_layer_macs(const Shape& input) const {
  std::vector<std::int64_t> out;
  out.reserve(layers_.size());
  Shape s = input;
  for (const auto& layer : layers_) {
    out.push_back(layer->macs(s));
    s = layer->output_shape(s);
  }
  return out;
}

void Sequential::clear_cache() {
  for (auto& layer : layers_) layer->clear_cache();
}

std::vector<Layer*> Sequential::children() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& layer : layers_) out.push_back(layer.get());
  return out;
}

}  // namespace ullsnn::dnn
