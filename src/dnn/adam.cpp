#include "src/dnn/adam.h"

#include <cmath>
#include <stdexcept>

namespace ullsnn::dnn {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  if (config_.lr <= 0.0F) throw std::invalid_argument("Adam: lr must be positive");
  if (config_.beta1 < 0.0F || config_.beta1 >= 1.0F || config_.beta2 < 0.0F ||
      config_.beta2 >= 1.0F) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const float decay = p.decay ? config_.weight_decay : 0.0F;
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j];
      m[j] = config_.beta1 * m[j] + (1.0F - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0F - config_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p.value[j] -= config_.lr * (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
                                  decay * p.value[j]);
    }
  }
}

}  // namespace ullsnn::dnn
