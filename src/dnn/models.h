// Model zoo: the paper's architectures (VGG-11/16, ResNet-20) plus VGG-13 and
// ResNet-32 variants, all bias-free with ThresholdReLU activations and
// Dropout regularization, per Sec. IV-A.
//
// `width` scales every channel count (and the VGG classifier's hidden size),
// so the same topology runs at paper scale (width = 1.0) or at the reduced
// scale the single-core benches use. Conversion behaviour is distributional
// and width-independent (see DESIGN.md).
#pragma once

#include <memory>

#include "src/dnn/sequential.h"
#include "src/tensor/random.h"

namespace ullsnn::dnn {

struct ModelConfig {
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  std::int64_t image_size = 32;
  float width = 1.0F;
  /// Classifier (FC) dropout probability.
  float dropout = 0.2F;
  /// Dropout after conv activations. Off by default: at reduced widths it
  /// starves thin feature maps and stalls training; enable for paper-scale
  /// widths where it acts as the BatchNorm replacement (Sec. IV-A).
  float conv_dropout = 0.0F;
  float initial_mu = 4.0F;
  /// VGG classifier hidden width; 0 selects 4096 * width (the paper-scale
  /// DIET-SNN-style head).
  std::int64_t fc_hidden = 0;
  /// Pooling ablation (Sec. IV-A): the paper argues FOR max pooling (binary
  /// spike outputs keep hidden layers accumulate-only); set true to build the
  /// average-pooling variant instead.
  bool use_avg_pool = false;
};

/// VGG-`depth` for depth in {11, 13, 16}.
std::unique_ptr<Sequential> build_vgg(int depth, const ModelConfig& config, Rng& rng);

/// ResNet-`depth` for depth in {20, 32} (CIFAR-style 3-stage layout).
std::unique_ptr<Sequential> build_resnet(int depth, const ModelConfig& config, Rng& rng);

/// Total trainable scalar count of a model.
std::int64_t parameter_count(Sequential& model);

}  // namespace ullsnn::dnn
