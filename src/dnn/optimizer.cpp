#include "src/dnn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace ullsnn::dnn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  if (config_.lr <= 0.0F) throw std::invalid_argument("Sgd: lr must be positive");
  if (config_.momentum < 0.0F || config_.momentum >= 1.0F) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const float decay = p.decay ? config_.weight_decay : 0.0F;
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + decay * p.value[j];
      v[j] = config_.momentum * v[j] + g;
      p.value[j] -= config_.lr * v[j];
    }
  }
}

StepDecaySchedule::StepDecaySchedule(float base_lr, std::int64_t total_epochs,
                                     std::vector<double> milestone_fractions,
                                     float gamma)
    : base_lr_(base_lr), gamma_(gamma) {
  if (base_lr <= 0.0F) throw std::invalid_argument("StepDecaySchedule: lr must be positive");
  if (total_epochs <= 0) throw std::invalid_argument("StepDecaySchedule: epochs must be positive");
  for (double f : milestone_fractions) {
    milestones_.push_back(static_cast<std::int64_t>(
        std::llround(f * static_cast<double>(total_epochs))));
  }
}

float StepDecaySchedule::lr_at(std::int64_t epoch) const {
  float lr = base_lr_;
  for (std::int64_t m : milestones_) {
    if (epoch >= m) lr *= gamma_;
  }
  return lr;
}

}  // namespace ullsnn::dnn
