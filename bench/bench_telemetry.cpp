// Telemetry overhead microbenchmarks (docs/observability.md quotes these):
//   * metric fast paths (counter add, gauge set, histogram observe),
//   * TraceScope with the tracer disabled (the steady-state cost paid by
//     instrumented code) and enabled,
//   * an instrumented SNN forward pass: bare vs tracer on vs probe attached.
// Build with -DULLSNN_TELEMETRY=OFF to confirm the macros vanish: the
// "disabled" variants then measure an empty loop.
#include <benchmark/benchmark.h>

#include "src/obs/metrics.h"
#include "src/obs/probe.h"
#include "src/obs/trace.h"
#include "src/snn/snn_network.h"
#include "src/tensor/random.h"

namespace {

using namespace ullsnn;

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    ULLSNN_COUNTER_ADD("bench.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    ULLSNN_GAUGE_SET("bench.gauge", v);
    v += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  double v = 1e-6;
  for (auto _ : state) {
    ULLSNN_HISTOGRAM_OBSERVE("bench.histogram", v);
    v = v < 1e3 ? v * 1.7 : 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::Tracer::instance().set_enabled(false);
  for (auto _ : state) {
    ULLSNN_TRACE_SCOPE("bench.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  for (auto _ : state) {
    ULLSNN_TRACE_SCOPE("bench.span");
    benchmark::ClobberMemory();
  }
  tracer.set_enabled(false);
  tracer.clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceScopeEnabled);

std::unique_ptr<snn::SnnNetwork> overhead_net() {
  auto net = std::make_unique<snn::SnnNetwork>(4);
  Rng rng(11);
  Tensor w({16, 3, 3, 3});
  kaiming_normal(w, 3 * 9, rng);
  net->emplace<snn::SpikingConv2d>(std::move(w), Conv2dSpec{3, 16, 3, 1, 1},
                                   snn::IfConfig{});
  net->emplace<snn::SpikingFlatten>();
  Tensor wl({32, 16 * 16 * 16});
  kaiming_normal(wl, 16 * 16 * 16, rng);
  net->emplace<snn::SpikingLinear>(std::move(wl), snn::IfConfig{}, true);
  Tensor wr({10, 32});
  kaiming_normal(wr, 32, rng);
  net->emplace<snn::SpikingLinear>(std::move(wr), snn::IfConfig{}, false);
  return net;
}

Tensor overhead_input() {
  Rng rng(12);
  Tensor input({2, 3, 16, 16});
  uniform_fill(input, -1.0F, 1.0F, rng);
  return input;
}

void BM_SnnForwardBare(benchmark::State& state) {
  auto net = overhead_net();
  const Tensor input = overhead_input();
  obs::Tracer::instance().set_enabled(false);
  for (auto _ : state) {
    Tensor logits = net->forward(input, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_SnnForwardBare);

void BM_SnnForwardTracerOn(benchmark::State& state) {
  auto net = overhead_net();
  const Tensor input = overhead_input();
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  for (auto _ : state) {
    Tensor logits = net->forward(input, false);
    benchmark::DoNotOptimize(logits.data());
  }
  tracer.set_enabled(false);
  tracer.clear();
}
BENCHMARK(BM_SnnForwardTracerOn);

void BM_SnnForwardProbed(benchmark::State& state) {
  auto net = overhead_net();
  const Tensor input = overhead_input();
  obs::Tracer::instance().set_enabled(false);
  obs::SnnRuntimeProbe::Config cfg;
  cfg.keep_step_stats = false;  // steady-state monitoring configuration
  obs::SnnRuntimeProbe probe(*net, cfg);
  for (auto _ : state) {
    Tensor logits = net->forward(input, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_SnnForwardProbed);

void BM_SnnForwardProbedFull(benchmark::State& state) {
  auto net = overhead_net();
  const Tensor input = overhead_input();
  obs::Tracer::instance().set_enabled(false);
  obs::SnnRuntimeProbe probe(*net);  // step stats + membrane histograms
  for (auto _ : state) {
    Tensor logits = net->forward(input, false);
    benchmark::DoNotOptimize(logits.data());
    probe.reset();  // keep the step-stat buffer from growing unboundedly
  }
}
BENCHMARK(BM_SnnForwardProbedFull);

}  // namespace

BENCHMARK_MAIN();
