// Fault-tolerance bench: converted-SNN accuracy vs injected fault rate at
// ultra-low latency (T = 2, 3, 5).
//
// Low-T SNNs are pitched for noisy neuromorphic hardware, so the interesting
// question is how the accuracy of a T=2..5 network degrades under the
// standard hardware fault taxonomy: random IEEE-754 weight bit-flips, weight
// sign-flips, stuck-at-zero (dead) output units, and membrane-potential
// bit-flips during inference. Each (T, kind, rate) cell converts a fresh SNN
// from the cached trained DNN, injects faults deterministically, and
// measures test accuracy.
//
// Expected shape: a clean cliff for weight bit-flips (exponent hits scale a
// weight by 2^k), a gentler slope for sign-flips and dead units, and T-fold
// averaging giving larger T slightly more resilience to membrane flips.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "src/robust/fault_injector.h"
#include "src/util/table.h"

using namespace ullsnn;

namespace {

struct FaultKind {
  const char* name;
  double robust::FaultSpec::* rate_field;
};

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Fault-tolerance bench (scale: %s) ==\n", bench::scale_name(scale));

  const core::Architecture arch = core::Architecture::kVgg11;
  const bench::BenchData data = bench::make_data(10, setup);
  double dnn_acc = 0.0;
  auto model = bench::trained_dnn(arch, 10, setup, data, &dnn_acc);
  const core::ActivationProfile profile =
      core::collect_activations(*model, data.train);
  std::printf("[faults] DNN accuracy: %.2f%%\n", 100.0 * dnn_acc);

  const FaultKind kinds[] = {
      {"weight_bitflip", &robust::FaultSpec::weight_bitflip_rate},
      {"weight_signflip", &robust::FaultSpec::weight_signflip_rate},
      {"stuck_at_zero", &robust::FaultSpec::stuck_at_zero_rate},
      {"membrane_bitflip", &robust::FaultSpec::membrane_bitflip_rate},
  };
  const double rates[] = {0.0, 1e-4, 1e-3, 1e-2, 3e-2};
  const std::int64_t ts[] = {2, 3, 5};

  Table table({"T", "Fault kind", "Rate", "Faults", "SNN accuracy %",
               "Clean accuracy %"});
  for (const std::int64_t t : ts) {
    core::ConversionConfig cc;
    cc.time_steps = t;
    // Clean baseline for this T (rate 0 re-measures it per kind as a check).
    auto clean_snn = core::convert(*model, profile, cc, nullptr);
    const double clean_acc =
        snn::evaluate_snn(*clean_snn, data.test, setup.batch_size);
    for (const FaultKind& kind : kinds) {
      for (const double rate : rates) {
        // Fresh conversion per cell: faults must not accumulate across cells.
        auto snn = core::convert(*model, profile, cc, nullptr);
        robust::FaultSpec spec;
        spec.*kind.rate_field = rate;
        robust::FaultInjector injector(spec);
        injector.inject(snn->params());
        if (spec.membrane_bitflip_rate > 0.0) {
          injector.attach_membrane_faults(*snn);
        }
        const double acc = snn::evaluate_snn(*snn, data.test, setup.batch_size);
        snn->clear_step_hook();
        table.add_row({std::to_string(t), kind.name, Table::fmt(rate, 5),
                       std::to_string(injector.faults_injected()),
                       Table::fmt(100.0 * acc), Table::fmt(100.0 * clean_acc)});
        std::printf("[faults] T=%lld %-16s rate=%-7g faults=%-5lld acc %.2f%% "
                    "(clean %.2f%%)\n",
                    static_cast<long long>(t), kind.name, rate,
                    static_cast<long long>(injector.faults_injected()),
                    100.0 * acc, 100.0 * clean_acc);
        std::fflush(stdout);
      }
    }
  }
  table.print("Converted-SNN accuracy vs fault rate (T = 2, 3, 5)");
  bench::write_csv(table, "faults.csv");
  std::printf("\nShape to verify: accuracy is flat at rate 0 and 1e-4, and\n"
              "weight bit-flips degrade hardest (exponent hits); membrane\n"
              "flips hurt less at larger T (more steps to average out).\n");
  return 0;
}
