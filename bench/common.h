// Shared harness utilities for the paper-reproduction benches.
//
// Scale control: every bench reads ULLSNN_BENCH_SCALE from the environment:
//   quick   — smoke-test sizes (seconds per bench; trends noisy)
//   default — single-core-friendly sizes (a few minutes; trends reproduce)
//   full    — wider nets / more data / more epochs (tens of minutes)
// The paper's absolute numbers come from full-width nets on real CIFAR and a
// 2080 Ti; these benches reproduce the SHAPE of each table/figure at reduced
// scale (see DESIGN.md's substitution table).
//
// Model cache: trained DNNs are serialized under ./ullsnn_bench_cache/ keyed
// by their configuration, so the six bench binaries share the expensive
// training stage. Delete the directory to retrain from scratch.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/core/pipeline.h"
#include "src/obs/build_info.h"
#include "src/util/serialize.h"
#include "src/util/table.h"

namespace ullsnn::bench {

/// Write a bench table as CSV with the build-provenance stamp (compiler,
/// flags, git hash, telemetry on/off) as leading "# " comment lines, so every
/// result file records how the binary that produced it was built.
inline void write_csv(const Table& table, const std::string& path) {
  table.write_csv(path, obs::build_info_comment());
}

enum class Scale { kQuick, kDefault, kFull };

inline Scale read_scale() {
  const char* env = std::getenv("ULLSNN_BENCH_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string s = env;
  if (s == "quick") return Scale::kQuick;
  if (s == "full") return Scale::kFull;
  return Scale::kDefault;
}

struct BenchSetup {
  std::int64_t train_size = 768;
  std::int64_t test_size = 256;
  std::int64_t dnn_epochs = 15;
  std::int64_t sgl_epochs = 5;
  float width = 0.125F;
  /// ResNet stages start at 16 channels; below width 0.25 they degenerate to
  /// 4-channel maps that cannot learn the task, so ResNets get their own
  /// floor.
  float resnet_width = 0.25F;
  std::int64_t batch_size = 32;

  float width_for(core::Architecture arch) const {
    const bool is_resnet = arch == core::Architecture::kResNet20 ||
                           arch == core::Architecture::kResNet32;
    return is_resnet ? std::max(width, resnet_width) : width;
  }
};

inline BenchSetup setup_for(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {256, 128, 5, 2, 0.125F, 0.125F, 32};
    case Scale::kDefault:
      // Reduced-width deep VGGs need ~12 epochs at 1024 samples to escape
      // their initial plateau before the 60%-milestone LR decay hits; smaller
      // budgets make training unreliable on one core.
      return {1024, 256, 20, 3, 0.125F, 0.25F, 32};
    case Scale::kFull:
      return {2048, 512, 40, 8, 0.25F, 0.375F, 32};
  }
  return {};
}

inline const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kQuick: return "quick";
    case Scale::kDefault: return "default";
    case Scale::kFull: return "full";
  }
  return "?";
}

/// Deterministic train/test pair for an n-class synthetic CIFAR analogue.
struct BenchData {
  data::LabeledImages train;
  data::LabeledImages test;
  data::SyntheticCifarSpec spec;
};

inline BenchData make_data(std::int64_t num_classes, const BenchSetup& setup) {
  BenchData d;
  d.spec.num_classes = num_classes;
  data::SyntheticCifar gen(d.spec);
  d.train = gen.generate(setup.train_size, 1);
  d.test = gen.generate(setup.test_size, 2);
  const data::ChannelStats stats = data::standardize(d.train);
  data::apply_standardize(d.test, stats);
  return d;
}

// ---- model weight cache ----

inline std::string cache_dir() { return "ullsnn_bench_cache"; }

inline std::string model_cache_key(core::Architecture arch, std::int64_t classes,
                                   const BenchSetup& setup) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s_c%lld_w%.3f_n%lld_e%lld.ckpt",
                core::to_string(arch), static_cast<long long>(classes),
                static_cast<double>(setup.width_for(arch)),
                static_cast<long long>(setup.train_size),
                static_cast<long long>(setup.dnn_epochs));
  std::string key = buf;
  for (char& c : key) {
    if (c == '/' || c == ' ') c = '_';
  }
  return cache_dir() + "/" + key;
}

inline void save_model(dnn::Sequential& model, const std::string& path) {
  TensorDict dict;
  std::int64_t i = 0;
  for (const dnn::Param* p : model.params()) {
    dict["p" + std::to_string(i++)] = p->value;
  }
  std::filesystem::create_directories(cache_dir());
  save_tensors(dict, path);
}

inline bool load_model(dnn::Sequential& model, const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  const TensorDict dict = load_tensors(path);
  std::vector<dnn::Param*> params = model.params();
  if (dict.size() != params.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto it = dict.find("p" + std::to_string(i));
    if (it == dict.end() || it->second.shape() != params[i]->value.shape()) {
      return false;
    }
    params[i]->value = it->second;
  }
  return true;
}

/// Build the architecture and either load cached weights or train + cache.
inline std::unique_ptr<dnn::Sequential> trained_dnn(core::Architecture arch,
                                                    std::int64_t classes,
                                                    const BenchSetup& setup,
                                                    const BenchData& data,
                                                    double* test_acc_out = nullptr) {
  dnn::ModelConfig mc;
  mc.width = setup.width_for(arch);
  mc.num_classes = classes;
  Rng rng(3);
  auto model = core::build_model(arch, mc, rng);
  const std::string path = model_cache_key(arch, classes, setup);
  if (!load_model(*model, path)) {
    std::printf("[bench] training %s (%lld classes, %lld epochs)...\n",
                core::to_string(arch), static_cast<long long>(classes),
                static_cast<long long>(setup.dnn_epochs));
    std::fflush(stdout);
    dnn::TrainConfig tc;
    tc.epochs = setup.dnn_epochs;
    tc.batch_size = setup.batch_size;
    tc.augment = false;  // single-core budget: more epochs beat augmentation
    dnn::DnnTrainer trainer(*model, tc);
    trainer.fit(data.train);
    save_model(*model, path);
  }
  if (test_acc_out != nullptr) {
    *test_acc_out = dnn::evaluate_model(*model, data.test, setup.batch_size);
  }
  return model;
}

}  // namespace ullsnn::bench
