// Reproduces the Sec. IV-B ablation study plus the design-choice ablations
// called out in DESIGN.md:
//
//  A. Threshold-scaling heuristics [16], [24] + SGL at T in {2, 3}: the paper
//     reports statistical collapse (~10% on CIFAR-10, ~1% on CIFAR-100).
//  B. Iso-accuracy latency: minimum T at which conversion-only reaches 90% of
//     the DNN accuracy — ours vs the max-act conversion of [15] (paper: 12
//     vs 16 steps).
//  C. Percentile alpha-grid vs linear grid (Algorithm 1's design argument).
//  D. Bias shift removed vs re-added on top of (alpha, beta) scaling
//     (Sec. III-B removes it).
//  E. Direct vs Poisson-rate input encoding (Sec. I's order-of-magnitude
//     latency argument).
//  F. Serving precision: the converted net evaluated with fp32 weights vs the
//     per-output-channel int8 weight path, at T in {1, 2, 3}. Quantization
//     must be accuracy-neutral (within 0.5% at T=3) for the int8 artifacts
//     produced by ullsnn_pack --int8 to be deployable.
#include <cstdio>

#include "bench/common.h"
#include "src/snn/sgl_trainer.h"
#include "src/tensor/gemm.h"
#include "src/util/table.h"
#include "src/util/timer.h"

using namespace ullsnn;

namespace {

double converted_accuracy(dnn::Sequential& model,
                          const core::ActivationProfile& profile,
                          const core::ConversionConfig& cc,
                          const bench::BenchData& data,
                          const bench::BenchSetup& setup,
                          snn::Encoding encoding = snn::Encoding::kDirect) {
  auto net = core::convert(model, profile, cc, nullptr);
  if (encoding != snn::Encoding::kDirect) net->set_encoding(encoding);
  return snn::evaluate_snn(*net, data.test, setup.batch_size);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Ablation study (scale: %s) ==\n", bench::scale_name(scale));

  const bench::BenchData data = bench::make_data(10, setup);
  double dnn_acc = 0.0;
  auto model =
      bench::trained_dnn(core::Architecture::kVgg16, 10, setup, data, &dnn_acc);
  const core::ActivationProfile profile = core::collect_activations(*model, data.train);
  std::printf("DNN reference accuracy: %.2f%%\n", 100.0 * dnn_acc);

  // --- A: heuristic threshold scaling + SGL collapses at ultra-low T ---
  Table heur({"Method", "T", "converted %", "after SGL %"});
  for (const std::int64_t t : {2, 3}) {
    core::ConversionConfig cc;
    cc.mode = core::ConversionMode::kPercentileHeuristic;
    cc.heuristic_percentile = 99.7F;  // the [16]/[24]-style calibrated outlier cut
    cc.time_steps = t;
    auto net = core::convert(*model, profile, cc, nullptr);
    const double conv = snn::evaluate_snn(*net, data.test, setup.batch_size);
    snn::SglConfig sc;
    sc.epochs = setup.sgl_epochs;
    sc.batch_size = setup.batch_size;
    sc.augment = false;
    snn::SglTrainer sgl(*net, sc);
    sgl.fit(data.train);
    heur.add_row({"pct-heuristic [16,24] + SGL", std::to_string(t),
                  Table::fmt(100.0 * conv), Table::fmt(100.0 * sgl.evaluate(data.test))});
    std::printf("[ablation A] heuristic T=%lld done\n", static_cast<long long>(t));
    std::fflush(stdout);
  }
  heur.print("A: threshold-scaling heuristics + SGL (paper: ~10% on CIFAR-10)");
  bench::write_csv(heur, "ablation_heuristic.csv");

  // --- B: iso-accuracy latency, conversion only ---
  const double target = 0.9 * dnn_acc;
  Table iso({"Conversion", "min T for 90% of DNN acc"});
  for (const core::ConversionMode mode :
       {core::ConversionMode::kOursAlphaBeta, core::ConversionMode::kMaxAct}) {
    std::int64_t found = -1;
    for (const std::int64_t t : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
      core::ConversionConfig cc;
      cc.mode = mode;
      cc.time_steps = t;
      if (converted_accuracy(*model, profile, cc, data, setup) >= target) {
        found = t;
        break;
      }
    }
    iso.add_row({std::string(core::to_string(mode)),
                 found > 0 ? std::to_string(found) : ">32"});
    std::printf("[ablation B] %s done\n", core::to_string(mode));
    std::fflush(stdout);
  }
  iso.print("B: iso-accuracy conversion latency (paper: ours 12 vs [15] 16)");
  bench::write_csv(iso, "ablation_latency.csv");

  // --- C: percentile vs linear alpha grid ---
  Table grid({"Site", "pct alpha", "pct |Delta|", "linear alpha", "linear |Delta|",
              "pct search pts", "linear pts"});
  double pct_total = 0.0;
  double lin_total = 0.0;
  Timer pct_timer;
  std::vector<core::ScalingResult> pct_results;
  for (const auto& site : profile.sites) {
    pct_results.push_back(core::find_scaling_factors(site.percentiles, site.mu, 2));
  }
  const double pct_seconds = pct_timer.seconds();
  Timer lin_timer;
  std::vector<core::ScalingResult> lin_results;
  for (const auto& site : profile.sites) {
    lin_results.push_back(
        core::find_scaling_factors_linear(site.percentiles, site.mu, 2, 100));
  }
  const double lin_seconds = lin_timer.seconds();
  for (std::size_t i = 0; i < profile.sites.size(); ++i) {
    pct_total += std::abs(pct_results[i].loss);
    lin_total += std::abs(lin_results[i].loss);
    if (i < 4) {  // first few rows are enough to see the trend
      grid.add_row({profile.sites[i].label, Table::fmt(pct_results[i].alpha, 3),
                    Table::fmt(std::abs(pct_results[i].loss), 3),
                    Table::fmt(lin_results[i].alpha, 3),
                    Table::fmt(std::abs(lin_results[i].loss), 3), "<=101", "100"});
    }
  }
  grid.print("C: percentile vs linear alpha grid (Algorithm 1 design choice)");
  std::printf("  total |Delta|: percentile %.3f vs linear %.3f; search time %.2fs vs %.2fs\n",
              pct_total, lin_total, pct_seconds, lin_seconds);

  // --- D: bias shift removed vs re-added on (alpha, beta) scaling ---
  Table bias({"Variant", "T", "converted %"});
  for (const std::int64_t t : {2, 3}) {
    core::ConversionConfig no_bias;
    no_bias.time_steps = t;
    core::ConversionConfig with_bias = no_bias;
    with_bias.bias_fraction_override = 0.5F;
    bias.add_row({"ours, bias removed (paper)", std::to_string(t),
                  Table::fmt(100.0 * converted_accuracy(*model, profile, no_bias, data,
                                                        setup))});
    bias.add_row({"ours + bias shift", std::to_string(t),
                  Table::fmt(100.0 * converted_accuracy(*model, profile, with_bias,
                                                        data, setup))});
  }
  bias.print("D: bias shift ablation on (alpha, beta) conversion");
  bench::write_csv(bias, "ablation_bias.csv");

  // --- E: direct vs Poisson input encoding ---
  Table enc({"Encoding", "T", "converted %"});
  for (const std::int64_t t : {2, 4, 8}) {
    core::ConversionConfig cc;
    cc.time_steps = t;
    enc.add_row({"direct", std::to_string(t),
                 Table::fmt(100.0 * converted_accuracy(*model, profile, cc, data, setup,
                                                       snn::Encoding::kDirect))});
    enc.add_row({"poisson", std::to_string(t),
                 Table::fmt(100.0 * converted_accuracy(*model, profile, cc, data, setup,
                                                       snn::Encoding::kPoisson))});
  }
  enc.print("E: direct vs Poisson rate encoding (direct should dominate at low T)");
  bench::write_csv(enc, "ablation_encoding.csv");

  // --- F: fp32 vs int8 serving precision across T ---
  // Same converted network, flipped between the fp32 and int8 dense forward
  // with set_precision (spike-binary inputs quantize losslessly, so any gap
  // comes from the per-output-channel weight rounding alone).
  Table prec({"Precision", "T", "converted %", "eval s"});
  for (const std::int64_t t : {1, 2, 3}) {
    core::ConversionConfig cc;
    cc.time_steps = t;
    auto net = core::convert(*model, profile, cc, nullptr);
    for (const Precision p : {Precision::kFp32, Precision::kInt8}) {
      net->set_precision(p);
      Timer eval_timer;
      const double acc = snn::evaluate_snn(*net, data.test, setup.batch_size);
      prec.add_row({p == Precision::kInt8 ? "int8" : "fp32", std::to_string(t),
                    Table::fmt(100.0 * acc), Table::fmt(eval_timer.seconds(), 2)});
    }
    std::printf("[ablation F] precision sweep T=%lld done\n",
                static_cast<long long>(t));
    std::fflush(stdout);
  }
  prec.print("F: serving precision fp32 vs int8 (int8 within 0.5% of fp32 at T=3)");
  bench::write_csv(prec, "ablation_precision.csv");
  return 0;
}
