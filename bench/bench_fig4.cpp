// Reproduces Fig. 4: (a) per-layer average spike counts, (b) total FLOPs,
// and (c) compute energy, for VGG-16 on the CIFAR-10/100 analogues,
// comparing: ours at T=2 and T=3 (after SGL), the 5-step hybrid baseline
// [7], the 16-step optimal-conversion baseline [15], and the
// iso-architecture DNN. Also reports the TrueNorth / SpiNNaker neuromorphic
// energy model of Sec. VI-B.
//
// Expected shape: SNN FLOPs/energy orders of magnitude below the DNN
// (paper: 103.5x / 159.2x energy reduction for CIFAR-10 / CIFAR-100);
// spike count and energy grow with T, so ours(T=2) < [7](T=5) < [15](T=16).
#include <cstdio>

#include "bench/common.h"
#include "src/energy/energy_model.h"
#include "src/energy/flops.h"
#include "src/energy/spike_monitor.h"
#include "src/snn/sgl_trainer.h"
#include "src/util/table.h"

using namespace ullsnn;

namespace {

struct SnnVariant {
  const char* label;
  std::int64_t time_steps;
  core::ConversionMode mode;
  bool fine_tune;
};

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Fig. 4 reproduction (scale: %s) ==\n", bench::scale_name(scale));

  const SnnVariant variants[] = {
      {"ours T=2", 2, core::ConversionMode::kOursAlphaBeta, true},
      {"ours T=3", 3, core::ConversionMode::kOursAlphaBeta, true},
      {"hybrid [7] T=5", 5, core::ConversionMode::kThresholdReLU, true},
      {"conversion [15] T=16", 16, core::ConversionMode::kMaxAct, false},
  };

  Table summary({"Dataset", "Model", "avg spikes/neuron", "MACs", "ACs",
                 "total FLOPs", "energy pJ", "DNN/SNN energy"});
  for (const std::int64_t classes : {std::int64_t{10}, std::int64_t{100}}) {
    const bench::BenchData data = bench::make_data(classes, setup);
    auto model = bench::trained_dnn(core::Architecture::kVgg16, classes, setup, data);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);
    const std::string ds = "CIFAR-" + std::to_string(classes);
    const Shape input_shape = {1, 3, data.spec.image_size, data.spec.image_size};

    const energy::FlopsReport dnn_flops = energy::count_dnn_flops(*model, input_shape);
    const double dnn_pj = energy::compute_energy_pj(dnn_flops);
    summary.add_row({ds, "DNN", "-", Table::fmt_sci(dnn_flops.total_macs, ""),
                     "0", Table::fmt_sci(dnn_flops.total_flops(), ""),
                     Table::fmt_sci(dnn_pj, ""), "1.00"});

    for (const SnnVariant& variant : variants) {
      core::ConversionConfig cc;
      cc.mode = variant.mode;
      cc.time_steps = variant.time_steps;
      auto snn = core::convert(*model, profile, cc, nullptr);
      if (variant.fine_tune) {
        snn::SglConfig sc;
        sc.epochs = std::max<std::int64_t>(setup.sgl_epochs / 2, 1);
        sc.batch_size = setup.batch_size;
        sc.augment = false;
        snn::SglTrainer sgl(*snn, sc);
        sgl.fit(data.train);
      }
      const energy::ActivityReport activity =
          energy::measure_activity(*snn, data.test, setup.batch_size);
      const energy::FlopsReport snn_flops = energy::count_snn_flops(*snn, input_shape);
      const double snn_pj = energy::compute_energy_pj(snn_flops);
      summary.add_row({ds, variant.label,
                       Table::fmt(activity.mean_spikes_per_neuron(), 3),
                       Table::fmt_sci(snn_flops.total_macs, ""),
                       Table::fmt_sci(snn_flops.total_acs, ""),
                       Table::fmt_sci(snn_flops.total_flops(), ""),
                       Table::fmt_sci(snn_pj, ""), Table::fmt(dnn_pj / snn_pj)});
      std::printf("[fig4] %s %-20s spikes/neuron %.3f  energy %.3e pJ  (DNN/SNN %.1fx,"
                  " acc %.3f)\n",
                  ds.c_str(), variant.label, activity.mean_spikes_per_neuron(), snn_pj,
                  dnn_pj / snn_pj, activity.accuracy);
      std::fflush(stdout);

      if (variant.time_steps == 2) {
        // Per-layer spike profile for Fig. 4(a) (ours, T=2).
        Table layers({"layer", "neurons", "spikes/neuron/image"});
        for (const auto& layer : activity.layers) {
          layers.add_row({layer.name, Table::fmt_int(layer.neurons),
                          Table::fmt(layer.spikes_per_neuron, 4)});
        }
        layers.print("Fig. 4(a): per-layer spiking activity, " + ds + ", ours T=2");
        bench::write_csv(layers, "fig4a_" + std::to_string(classes) + ".csv");

        // Neuromorphic energy (Sec. VI-B closing argument).
        const double total = snn_flops.total_flops();
        std::printf("  neuromorphic energy (normalized): TrueNorth %.3e, "
                    "SpiNNaker %.3e (compute-bound: T*E_static = %.2f / %.2f)\n",
                    energy::neuromorphic_energy(total, 2, energy::kTrueNorth),
                    energy::neuromorphic_energy(total, 2, energy::kSpiNNaker),
                    2 * energy::kTrueNorth.e_static, 2 * energy::kSpiNNaker.e_static);
      }
    }
  }
  summary.print("Fig. 4(b)/(c): FLOPs and compute energy, VGG-16");
  bench::write_csv(summary, "fig4.csv");
  std::printf("\nPaper reference: CIFAR-10 DNN/SNN energy 103.5x; CIFAR-100 159.2x;\n"
              "ours vs [7] 1.27-1.52x; ours vs [15] 4.72-5.18x.\n");
  return 0;
}
