// Kernel microbenchmarks and the perf-regression baseline.
//
// Covers the full hot-kernel surface: blocked vs naive GEMM (all three
// transpose variants), batched conv forward/backward, the linear layer,
// pooling, the sparse-vs-dense spike-GEMM density sweep, IF-neuron stepping,
// and dense vs event-driven inference.
//
// Regression workflow: tools/bench_to_json.sh runs this binary with JSON
// output and stamps it with build provenance; the checked-in
// bench/BENCH_kernels.json is the baseline, and CI's perf-smoke job compares
// a fresh run against it with tools/compare_bench.py (normalized by
// BM_MatmulNaive/256 so AVX-512 dev boxes and AVX2 CI runners are
// comparable). Refresh the baseline whenever a kernel change lands (see
// docs/performance.md).
#include <benchmark/benchmark.h>

#include "src/obs/build_info.h"
#include "src/snn/event_driven.h"
#include "src/snn/neuron.h"
#include "src/snn/snn_network.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace {

using namespace ullsnn;

// ---- GEMM ----

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    matmul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
// Fast kernels carry an explicit wall-clock budget (MinTime, which overrides
// any --benchmark_min_time from the harness) so iteration counts are derived
// from elapsed time: with the SIMD dispatch a 64x64 tile runs in a few µs,
// and a fixed/short rep budget would sit at the timer's resolution floor.
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.2);

/// The retained pre-blocking kernel. Doubles as the cross-machine calibration
/// anchor for the CI regression gate: its ratio to every other benchmark is
/// far more stable across ISAs than absolute nanoseconds.
void BM_MatmulNaive(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    matmul_naive(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(256)->MinTime(0.2);

void BM_MatmulBt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    matmul_bt(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulBt)->Arg(256)->MinTime(0.2);

/// int8 weight-quantized GEMM through the same dispatch layer: per-row
/// asymmetric activation quantization + int8xint8 micro-kernel with int32
/// accumulation and fused dequant epilogue. Weights are packed once outside
/// the timed loop, matching how layers reuse QuantizedPackedB across steps.
/// Compare against BM_Matmul at the same size for the quantization speedup.
void BM_MatmulInt8(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor w({n, n});
  Tensor c({n, n});
  uniform_fill(a, 0.0F, 1.0F, rng);
  uniform_fill(w, -1.0F, 1.0F, rng);
  const QuantizedWeight qw = quantize_weight_per_row(w.data(), n, n);
  QuantizedPackedB packed;
  packed.pack(qw);
  for (auto _ : state) {
    gemm_packed_int8(row_major(a.data(), n), packed, c.data(), n,
                     /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulInt8)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.2);

// ---- convolution ----

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(2);
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.out_channels = channels;
  Tensor input({1, channels, 32, 32});
  Tensor weight({channels, channels, 3, 3});
  Tensor output({1, channels, 32, 32});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.1F, 0.1F, rng);
  for (auto _ : state) {
    conv2d_forward(input, weight, Tensor(), output, spec);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * output.numel());
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64)->MinTime(0.2);

/// int8 convolution: the spiking forward with a pre-quantized weight operand
/// and the density threshold forced below zero so every sample takes the
/// dense int8 path. Compare against BM_Conv2dForward at the same size.
void BM_Conv2dForwardInt8(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(2);
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.out_channels = channels;
  Tensor input({1, channels, 32, 32});
  Tensor weight({channels, channels, 3, 3});
  Tensor output({1, channels, 32, 32});
  uniform_fill(input, 0.0F, 1.0F, rng);
  uniform_fill(weight, -0.1F, 0.1F, rng);
  const QuantizedWeight qw =
      quantize_weight_per_row(weight.data(), channels, channels * 9);
  QuantizedPackedB packed;
  packed.pack(qw);
  std::vector<float> wt_cache;
  SpikeKernelStats stats;
  for (auto _ : state) {
    conv2d_forward_spiking(input, weight, output, spec,
                           /*density_threshold=*/-1.0F, wt_cache, stats,
                           &packed);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * output.numel());
}
BENCHMARK(BM_Conv2dForwardInt8)->Arg(16)->Arg(32)->Arg(64)->MinTime(0.2);

/// Batched forward: the packed weight panels are reused across the 8 samples.
void BM_Conv2dForwardBatched(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(2);
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.out_channels = channels;
  Tensor input({8, channels, 32, 32});
  Tensor weight({channels, channels, 3, 3});
  Tensor output({8, channels, 32, 32});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.1F, 0.1F, rng);
  for (auto _ : state) {
    conv2d_forward(input, weight, Tensor(), output, spec);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * output.numel());
}
BENCHMARK(BM_Conv2dForwardBatched)->Arg(16)->Arg(32)->MinTime(0.2);

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(3);
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.out_channels = channels;
  Tensor input({8, channels, 32, 32});
  Tensor weight({channels, channels, 3, 3});
  Tensor grad_output({8, channels, 32, 32});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.1F, 0.1F, rng);
  uniform_fill(grad_output, -1.0F, 1.0F, rng);
  Tensor grad_input(input.shape());
  Tensor grad_weight(weight.shape());
  for (auto _ : state) {
    grad_weight.fill(0.0F);
    conv2d_backward(input, weight, grad_output, &grad_input, grad_weight,
                    nullptr, spec);
    benchmark::DoNotOptimize(grad_weight.data());
  }
  state.SetItemsProcessed(state.iterations() * input.numel());
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(32)->MinTime(0.2);

// ---- linear ----

void BM_LinearForward(benchmark::State& state) {
  const std::int64_t features = state.range(0);
  Rng rng(4);
  Tensor input({32, features});
  Tensor weight({features, features});
  Tensor output({32, features});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.1F, 0.1F, rng);
  for (auto _ : state) {
    matmul_bt(input.data(), weight.data(), output.data(), 32, features, features);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * features * features);
}
BENCHMARK(BM_LinearForward)->Arg(256)->Arg(1024)->MinTime(0.2);

// ---- pooling ----

void BM_MaxPool(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(5);
  Pool2dSpec spec;  // 2x2 stride 2
  Tensor input({8, channels, 32, 32});
  Tensor output({8, channels, 16, 16});
  uniform_fill(input, -1.0F, 1.0F, rng);
  std::vector<std::int64_t> argmax;
  for (auto _ : state) {
    maxpool2d_forward(input, output, argmax, spec);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * input.numel());
}
BENCHMARK(BM_MaxPool)->Arg(64)->MinTime(0.2);

void BM_AvgPool(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(5);
  Pool2dSpec spec;
  Tensor input({8, channels, 32, 32});
  Tensor output({8, channels, 16, 16});
  uniform_fill(input, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    avgpool2d_forward(input, output, spec);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * input.numel());
}
BENCHMARK(BM_AvgPool)->Arg(64)->MinTime(0.2);

// ---- sparse vs dense spike GEMM (density sweep) ----
//
// Arg is density per mille. The crossover between these two curves is what
// kDefaultSpikeDensityThreshold encodes; refresh it from this sweep when the
// kernels change (docs/performance.md).

Tensor spike_matrix(std::int64_t m, std::int64_t k, std::int64_t per_mille, Rng& rng) {
  Tensor a({m, k});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (rng.uniform_int(1000) < per_mille) a[i] = 1.0F;
  }
  return a;
}

void BM_SpikeGemmSparse(benchmark::State& state) {
  constexpr std::int64_t kM = 256, kK = 1024, kN = 256;
  Rng rng(6);
  const Tensor a = spike_matrix(kM, kK, state.range(0), rng);
  Tensor b({kK, kN});
  uniform_fill(b, -0.1F, 0.1F, rng);
  Tensor c({kM, kN});
  for (auto _ : state) {
    spmm_row_compressed(a.data(), b.data(), c.data(), kM, kK, kN,
                        /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kM * kK * kN);
}
BENCHMARK(BM_SpikeGemmSparse)->Arg(10)->Arg(50)->Arg(100)->Arg(250)->Arg(500)->MinTime(0.2);

void BM_SpikeGemmDense(benchmark::State& state) {
  constexpr std::int64_t kM = 256, kK = 1024, kN = 256;
  Rng rng(6);
  const Tensor a = spike_matrix(kM, kK, state.range(0), rng);
  Tensor b({kK, kN});
  uniform_fill(b, -0.1F, 0.1F, rng);
  Tensor c({kM, kN});
  for (auto _ : state) {
    matmul(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kM * kK * kN);
}
BENCHMARK(BM_SpikeGemmDense)->Arg(10)->Arg(50)->Arg(100)->Arg(250)->Arg(500)->MinTime(0.2);

// ---- IF neuron ----

void BM_IfNeuronStep(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  snn::IfConfig config;
  snn::IfNeuron neuron(config);
  Tensor current({1, n});
  uniform_fill(current, -0.5F, 1.5F, rng);
  neuron.begin_sequence({1, n}, 1, /*train=*/false);
  for (auto _ : state) {
    Tensor spikes = neuron.step_forward(current, 0, /*train=*/false);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IfNeuronStep)->Arg(1 << 12)->Arg(1 << 16)->MinTime(0.2);

// Dense time-stepped vs event-driven inference at controlled input activity.
// The event engine's runtime should drop with activity while the dense
// engine's stays flat — the software analogue of the Sec. VI sparsity
// argument. Arg: active pixels per mille (1000 = fully dense).
std::unique_ptr<snn::SnnNetwork> sparse_bench_net() {
  auto net = std::make_unique<snn::SnnNetwork>(2);
  Rng rng(7);
  Tensor w({16, 16, 3, 3});
  kaiming_normal(w, 16 * 9, rng);
  snn::IfConfig neuron;
  neuron.v_threshold = 1.0F;
  net->emplace<snn::SpikingConv2d>(std::move(w), Conv2dSpec{16, 16, 3, 1, 1}, neuron);
  net->emplace<snn::SpikingFlatten>();
  Tensor wr({10, 16 * 16 * 16});
  kaiming_normal(wr, 16 * 16 * 16, rng);
  net->emplace<snn::SpikingLinear>(std::move(wr), snn::IfConfig{}, false);
  return net;
}

Tensor sparse_input(std::int64_t per_mille, Rng& rng) {
  Tensor input({1, 16, 16, 16});
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    if (rng.uniform_int(1000) < per_mille) input[i] = rng.uniform(0.5F, 1.5F);
  }
  return input;
}

void BM_DenseInference(benchmark::State& state) {
  auto net = sparse_bench_net();
  Rng rng(8);
  const Tensor input = sparse_input(state.range(0), rng);
  for (auto _ : state) {
    Tensor logits = net->forward(input, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_DenseInference)->Arg(1000)->Arg(100)->Arg(10)->MinTime(0.2);

void BM_EventDrivenInference(benchmark::State& state) {
  auto net = sparse_bench_net();
  snn::EventDrivenEngine engine(*net);
  Rng rng(8);
  const Tensor input = sparse_input(state.range(0), rng);
  for (auto _ : state) {
    Tensor logits = engine.forward(input);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_EventDrivenInference)->Arg(1000)->Arg(100)->Arg(10)->MinTime(0.2);

}  // namespace

// Custom main so the JSON/console output carries the build provenance stamp
// (compiler, flags, git hash, telemetry) in its context block — a result file
// is then traceable to the exact build that produced it.
int main(int argc, char** argv) {
  const ullsnn::obs::BuildInfo& info = ullsnn::obs::build_info();
  benchmark::AddCustomContext("compiler", info.compiler);
  benchmark::AddCustomContext("build_type", info.build_type);
  benchmark::AddCustomContext("cxx_flags", info.flags);
  benchmark::AddCustomContext("git_hash", info.git_hash);
  benchmark::AddCustomContext("telemetry", info.telemetry ? "on" : "off");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
