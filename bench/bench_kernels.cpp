// Kernel microbenchmarks: GEMM, im2col convolution, IF-neuron stepping.
// Supporting evidence for the simulation-time analysis (Fig. 3); not a paper
// table by itself.
#include <benchmark/benchmark.h>

#include "src/snn/event_driven.h"
#include "src/snn/neuron.h"
#include "src/snn/snn_network.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace {

using namespace ullsnn;

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c({n, n});
  uniform_fill(a, -1.0F, 1.0F, rng);
  uniform_fill(b, -1.0F, 1.0F, rng);
  for (auto _ : state) {
    matmul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(2);
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.out_channels = channels;
  Tensor input({1, channels, 32, 32});
  Tensor weight({channels, channels, 3, 3});
  Tensor output({1, channels, 32, 32});
  uniform_fill(input, -1.0F, 1.0F, rng);
  uniform_fill(weight, -0.1F, 0.1F, rng);
  std::vector<float> scratch;
  for (auto _ : state) {
    conv2d_forward(input, weight, Tensor(), output, spec, scratch);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * output.numel());
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_IfNeuronStep(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  snn::IfConfig config;
  snn::IfNeuron neuron(config);
  Tensor current({1, n});
  uniform_fill(current, -0.5F, 1.5F, rng);
  neuron.begin_sequence({1, n}, 1, /*train=*/false);
  for (auto _ : state) {
    Tensor spikes = neuron.step_forward(current, 0, /*train=*/false);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IfNeuronStep)->Arg(1 << 12)->Arg(1 << 16);

// Dense time-stepped vs event-driven inference at controlled input activity.
// The event engine's runtime should drop with activity while the dense
// engine's stays flat — the software analogue of the Sec. VI sparsity
// argument. Arg: active pixels per mille (1000 = fully dense).
std::unique_ptr<snn::SnnNetwork> sparse_bench_net() {
  auto net = std::make_unique<snn::SnnNetwork>(2);
  Rng rng(7);
  Tensor w({16, 16, 3, 3});
  kaiming_normal(w, 16 * 9, rng);
  snn::IfConfig neuron;
  neuron.v_threshold = 1.0F;
  net->emplace<snn::SpikingConv2d>(std::move(w), Conv2dSpec{16, 16, 3, 1, 1}, neuron);
  net->emplace<snn::SpikingFlatten>();
  Tensor wr({10, 16 * 16 * 16});
  kaiming_normal(wr, 16 * 16 * 16, rng);
  net->emplace<snn::SpikingLinear>(std::move(wr), snn::IfConfig{}, false);
  return net;
}

Tensor sparse_input(std::int64_t per_mille, Rng& rng) {
  Tensor input({1, 16, 16, 16});
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    if (rng.uniform_int(1000) < per_mille) input[i] = rng.uniform(0.5F, 1.5F);
  }
  return input;
}

void BM_DenseInference(benchmark::State& state) {
  auto net = sparse_bench_net();
  Rng rng(8);
  const Tensor input = sparse_input(state.range(0), rng);
  for (auto _ : state) {
    Tensor logits = net->forward(input, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_DenseInference)->Arg(1000)->Arg(100)->Arg(10);

void BM_EventDrivenInference(benchmark::State& state) {
  auto net = sparse_bench_net();
  snn::EventDrivenEngine engine(*net);
  Rng rng(8);
  const Tensor input = sparse_input(state.range(0), rng);
  for (auto _ : state) {
    Tensor logits = engine.forward(input);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_EventDrivenInference)->Arg(1000)->Arg(100)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
