// Reproduces Fig. 1: (a) the DNN (threshold-ReLU) vs SNN activation
// functions, the skewed pre-activation distribution of a trained VGG-16's
// second conv layer, and the collapse of h(T, mu) as T shrinks; (b) the
// (alpha, beta)-scaled staircase and the Algorithm-1 loss decomposition.
//
// Expected shape: the layer-2 pre-activation histogram is heavily
// right-skewed (most mass near 0, skewness >> 0); h(T, mu) ~ K(mu) ~ 0.5
// would hold for uniform distributions, but here h drops well below K for
// T <= 5 while K stays T-independent -> Delta = mu (K - h) > 0 at low T.
#include <cstdio>

#include "bench/common.h"
#include "src/core/delta_analysis.h"
#include "src/tensor/stats.h"
#include "src/util/table.h"

using namespace ullsnn;

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Fig. 1 reproduction (scale: %s) ==\n", bench::scale_name(scale));

  const bench::BenchData data = bench::make_data(10, setup);
  auto model = bench::trained_dnn(core::Architecture::kVgg16, 10, setup, data);
  const core::ActivationProfile profile = core::collect_activations(*model, data.train);

  // Fig. 1(a): the paper plots layer 2 of VGG-16; site index 1 is the second
  // conv's pre-activation.
  const core::ActivationSite& site = profile.sites.at(1);
  const float mu = site.mu;
  const Moments m = compute_moments(site.samples);
  std::printf("\nLayer-2 pre-activation distribution (site '%s'):\n",
              site.label.c_str());
  std::printf("  mu (trained threshold) = %.4f, d_max = %.4f\n", mu, site.d_max);
  std::printf("  mean %.4f  stddev %.4f  skewness %.3f\n", m.mean, m.stddev,
              m.skewness);
  std::printf("  fraction of d in [0, d_max/3]: %.4f (paper: >99%% below d_max/3)\n",
              static_cast<double>(std::count_if(
                  site.samples.begin(), site.samples.end(),
                  [&](float d) { return d <= site.d_max / 3.0F; })) /
                  static_cast<double>(site.samples.size()));

  // Histogram of the positive pre-activations over [0, mu] (the paper's
  // inset distribution).
  Table hist({"bin", "range", "density"});
  const Histogram h = make_histogram(site.samples, 0.0F, mu, 10);
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const float lo = h.lo + static_cast<float>(b) * h.bin_width();
    hist.add_row({std::to_string(b),
                  "[" + Table::fmt(lo, 3) + ", " + Table::fmt(lo + h.bin_width(), 3) + ")",
                  Table::fmt(h.density_at(lo + 0.5F * h.bin_width()), 3)});
  }
  hist.print("Fig. 1(a): layer-2 pre-activation histogram (d, trained VGG-16)");

  // h(T, mu) vs T (the Fig. 1(a) insert), plus K(mu) and Delta = mu (K - h).
  const double k = core::estimate_k(site.samples, mu);
  Table hT({"T", "h(T, mu)", "K(mu)", "Delta = mu(K - h)"});
  for (const std::int64_t t : {1, 2, 3, 4, 5, 8, 16}) {
    const double ht = core::estimate_h(site.samples, mu, t);
    hT.add_row({std::to_string(t), Table::fmt(ht, 4), Table::fmt(k, 4),
                Table::fmt(mu * (k - ht), 4)});
  }
  hT.print("Fig. 1(a) insert: h(T, mu) collapse at low T (K is T-independent)");
  bench::write_csv(hT, "fig1_h.csv");

  // Activation transfer functions (Fig. 1(a) curves + Fig. 1(b) scaling).
  const core::ScalingResult scaled = core::find_scaling_factors(site.percentiles, mu, 2);
  std::printf("\nAlgorithm 1 at T=2: alpha=%.3f beta=%.3f  |loss| %.4f -> %.4f\n",
              scaled.alpha, scaled.beta, std::abs(scaled.initial_loss),
              std::abs(scaled.loss));
  Table curves({"s (pre-act)", "DNN clip", "SNN T=2 (bias)", "SNN T=2 (ours a,b)"});
  for (int i = 0; i <= 12; ++i) {
    const float s = mu * static_cast<float>(i) / 10.0F;
    curves.add_row({Table::fmt(s, 3), Table::fmt(core::dnn_activation(s, mu), 3),
                    Table::fmt(core::snn_activation(s, mu, 1.0F, 1.0F, 2, true), 3),
                    Table::fmt(core::snn_activation(s, mu, scaled.alpha, scaled.beta,
                                                    2, false),
                               3)});
  }
  curves.print("Fig. 1(a)/(b): activation transfer functions");
  bench::write_csv(curves, "fig1_curves.csv");

  // Fig. 1(b): per-site scaling factors chosen by Algorithm 1 at T=2.
  Table sites({"site", "mu", "alpha", "beta", "V_th = alpha*mu", "|Delta| before",
               "|Delta| after"});
  const auto all = core::find_all_scaling_factors(profile, 2);
  for (std::size_t i = 0; i < all.size(); ++i) {
    sites.add_row({profile.sites[i].label, Table::fmt(profile.sites[i].mu, 3),
                   Table::fmt(all[i].alpha, 3), Table::fmt(all[i].beta, 3),
                   Table::fmt(all[i].alpha * profile.sites[i].mu, 3),
                   Table::fmt(std::abs(all[i].initial_loss), 2),
                   Table::fmt(std::abs(all[i].loss), 2)});
  }
  sites.print("Algorithm 1 per-layer scaling factors (T=2)");
  bench::write_csv(sites, "fig1_scaling.csv");
  return 0;
}
