// Artifact + hot-swap deployment bench: what the mmap'd artifact buys at
// worker spin-up time, and what a live swap costs the serving path.
//
// Modes (combinable; with no flags both run at a short default):
//
//   --spinup     cold checkpoint parse vs full artifact load (mmap + every
//                CRC) vs per-worker replica builds: borrowed zero-copy views
//                against the old deep-copy-per-worker path.
//   --soak       swap-under-load: drive the registry-backed ServeEngine and
//                hot-swap the model every --swap-every accepted requests,
//                interleaving corrupt candidates (must be rejected with the
//                active version untouched) and one forced post-swap health
//                regression (must auto-roll back). FAILS (exit 1) on any
//                lost request, any corrupt deploy that activates, or a
//                rollback that never fires. Also reports swap-drain latency
//                (deploy() return -> every worker on the new version).
//
// Options: --seconds N, --swap-every N, --workers N, --json PATH.
//
// The JSON snapshot (tools/bench_to_json.sh artifact) is the checked-in
// bench/BENCH_artifact.json deployment baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/artifact/artifact.h"
#include "src/artifact/model_registry.h"
#include "src/robust/fault_injector.h"
#include "src/serve/engine.h"
#include "src/util/timer.h"

using namespace ullsnn;

namespace {

struct Options {
  bool spinup = false;
  bool soak = false;
  double seconds = 5.0;
  std::int64_t swap_every = 200;
  std::int64_t workers = 2;
  std::string json_path;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--spinup") {
      opt.spinup = true;
    } else if (arg == "--soak") {
      opt.soak = true;
    } else if (arg == "--seconds") {
      opt.seconds = std::stod(next());
    } else if (arg == "--swap-every") {
      opt.swap_every = std::stoll(next());
    } else if (arg == "--workers") {
      opt.workers = std::stoll(next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  if (!opt.spinup && !opt.soak) {
    opt.spinup = true;
    opt.soak = true;
  }
  if (opt.swap_every <= 0) {
    throw std::invalid_argument("--swap-every must be positive");
  }
  return opt;
}

std::string work_dir() { return bench::cache_dir() + "/artifacts"; }

struct SpinupResult {
  double checkpoint_load_ms = 0.0;  // v2 checkpoint parse (load_tensors)
  double artifact_load_ms = 0.0;    // mmap + full CRC/bounds validation
  double borrow_spinup_us = 0.0;    // make_network(): borrowed views
  double deepcopy_spinup_us = 0.0;  // make_network() + detach every weight
  std::uint64_t artifact_bytes = 0;
  std::int64_t replicas = 0;
};

SpinupResult run_spinup(snn::SnnNetwork& net, const std::string& art_path) {
  SpinupResult r;
  constexpr std::int64_t kLoadReps = 20;
  constexpr std::int64_t kReplicaReps = 50;
  r.replicas = kReplicaReps;

  // Baseline: the pre-artifact path parsed a v2 checkpoint per process.
  const std::string ckpt = work_dir() + "/bench_weights.ckpt";
  {
    TensorDict dict;
    std::int64_t i = 0;
    for (const dnn::Param* p : net.params()) {
      std::string key = "p";
      key += std::to_string(i++);
      dict[key] = p->value;
    }
    save_tensors(dict, ckpt);
  }
  {
    Timer t;
    for (std::int64_t i = 0; i < kLoadReps; ++i) {
      const TensorDict d = load_tensors(ckpt);
      if (d.empty()) throw std::runtime_error("empty checkpoint");
    }
    r.checkpoint_load_ms = t.millis() / static_cast<double>(kLoadReps);
  }

  {
    Timer t;
    for (std::int64_t i = 0; i < kLoadReps; ++i) {
      auto art = artifact::UllsnnArtifact::load(art_path);
      r.artifact_bytes = art->file_size();
    }
    r.artifact_load_ms = t.millis() / static_cast<double>(kLoadReps);
  }

  const auto art = artifact::UllsnnArtifact::load(art_path);
  {
    Timer t;
    for (std::int64_t i = 0; i < kReplicaReps; ++i) {
      auto replica = art->make_network();
      if (replica->size() == 0) throw std::runtime_error("empty replica");
    }
    r.borrow_spinup_us =
        t.millis() * 1e3 / static_cast<double>(kReplicaReps);
  }
  {
    Timer t;
    for (std::int64_t i = 0; i < kReplicaReps; ++i) {
      auto replica = art->make_network();
      // The old path: every worker owns a full copy of every weight.
      for (dnn::Param* p : replica->params()) {
        (void)p->value.data();  // non-const access detaches the borrow
      }
    }
    r.deepcopy_spinup_us =
        t.millis() * 1e3 / static_cast<double>(kReplicaReps);
  }

  std::printf("\n== Spin-up (%lld load reps, %lld replica reps) ==\n",
              static_cast<long long>(kLoadReps),
              static_cast<long long>(kReplicaReps));
  std::printf("  checkpoint parse      %8.3f ms  (v2 load_tensors)\n",
              r.checkpoint_load_ms);
  std::printf("  artifact load         %8.3f ms  (mmap + full validation, "
              "%llu bytes)\n",
              r.artifact_load_ms,
              static_cast<unsigned long long>(r.artifact_bytes));
  std::printf("  replica, zero-copy    %8.1f us  (borrowed views)\n",
              r.borrow_spinup_us);
  std::printf("  replica, deep-copy    %8.1f us  (owned weight copies)\n",
              r.deepcopy_spinup_us);
  return r;
}

struct SoakResult {
  std::int64_t submitted = 0;
  std::int64_t accepted = 0;
  std::int64_t resolved = 0;
  std::int64_t lost = 0;
  std::int64_t swaps_requested = 0;
  std::int64_t corrupt_deploys = 0;
  std::int64_t corrupt_rejected = 0;
  std::int64_t auto_rollbacks = 0;
  double elapsed_s = 0.0;
  double drain_p50_ms = 0.0;
  double drain_max_ms = 0.0;
  bool passed = false;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

SoakResult run_soak(const Options& opt, const data::LabeledImages& test,
                    const std::vector<std::string>& versions,
                    const std::string& corrupt_path) {
  std::printf("\n== Swap-under-load soak: %.0fs, swap every %lld requests, "
              "%lld worker(s) ==\n",
              opt.seconds, static_cast<long long>(opt.swap_every),
              static_cast<long long>(opt.workers));
  SoakResult r;

  artifact::RegistryConfig rc;
  rc.health_window = 8;
  rc.health_failure_threshold = 1;
  auto registry = std::make_shared<artifact::ModelRegistry>(rc);
  registry->deploy(versions[0]);

  serve::ServeConfig config;
  config.workers = opt.workers;
  config.queue_capacity = 128;
  config.default_deadline = std::chrono::milliseconds(10000);
  config.request_timeout = std::chrono::milliseconds(30000);
  config.retry_backoff = std::chrono::microseconds(0);
  config.max_attempts = 1;
  config.breaker.failure_threshold = 1 << 20;  // registry owns rollback here
  std::atomic<bool> poison{false};
  config.after_forward_hook = [&poison](const std::vector<std::int64_t>&,
                                        Tensor& logits) {
    if (poison.load(std::memory_order_acquire)) {
      logits.data()[0] = std::numeric_limits<float>::quiet_NaN();
    }
  };
  serve::ServeEngine engine(config, registry);
  engine.start();

  const std::int64_t samples = test.size();
  const std::int64_t numel = test.images.numel() / samples;
  const Shape shape(test.images.shape().begin() + 1,
                    test.images.shape().end());
  std::vector<serve::ResponseFuture> futures;
  std::vector<double> drains;
  Timer wall;
  std::size_t next_version = 1;
  while (wall.seconds() < opt.seconds) {
    // Periodic hot swap; every third swap tries the corrupt candidate.
    if (r.accepted > 0 && r.accepted % opt.swap_every == 0 &&
        r.swaps_requested * opt.swap_every < r.accepted) {
      ++r.swaps_requested;
      if (r.swaps_requested % 3 == 0) {
        ++r.corrupt_deploys;
        try {
          registry->deploy(corrupt_path);
        } catch (const artifact::ArtifactError&) {
          ++r.corrupt_rejected;
        }
      } else {
        registry->deploy(versions[next_version % versions.size()]);
        ++next_version;
        Timer drain;
        while (engine.workers_on_active() < opt.workers &&
               drain.seconds() < 10.0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        drains.push_back(drain.millis());
      }
    }
    const std::int64_t s = r.submitted % samples;
    Tensor image(shape);
    std::copy(test.images.data() + s * numel,
              test.images.data() + (s + 1) * numel, image.data());
    ++r.submitted;
    serve::SubmitResult sub = engine.submit(std::move(image));
    if (sub.accepted) {
      futures.push_back(std::move(sub.future));
      ++r.accepted;
    }
    if (r.submitted % 32 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Forced post-swap regression: deploy a fresh version, poison the logits,
  // and require the registry to flee back on its own.
  const std::uint64_t before = registry->version();
  registry->deploy(versions[next_version % versions.size()]);
  poison.store(true, std::memory_order_release);
  Timer rollback_timer;
  while (registry->version() == before + 1 && rollback_timer.seconds() < 10.0) {
    const std::int64_t s = r.submitted % samples;
    Tensor image(shape);
    std::copy(test.images.data() + s * numel,
              test.images.data() + (s + 1) * numel, image.data());
    ++r.submitted;
    serve::SubmitResult sub = engine.submit(std::move(image));
    if (sub.accepted) {
      futures.push_back(std::move(sub.future));
      ++r.accepted;
    }
  }
  poison.store(false, std::memory_order_release);
  for (const auto& t : registry->history()) {
    if (t.event == "auto-rollback") ++r.auto_rollbacks;
  }

  for (auto& f : futures) {
    if (!f.valid()) continue;
    (void)f.get();  // watchdog bounds this; every accepted request resolves
    ++r.resolved;
  }
  engine.stop();
  r.elapsed_s = wall.seconds();
  r.lost = r.accepted - r.resolved;
  r.drain_p50_ms = percentile(drains, 0.50);
  r.drain_max_ms = drains.empty() ? 0.0 : *std::max_element(drains.begin(),
                                                            drains.end());
  r.passed = r.lost == 0 && r.corrupt_rejected == r.corrupt_deploys &&
             r.corrupt_deploys > 0 && r.auto_rollbacks >= 1;

  std::printf("  submitted=%lld accepted=%lld resolved=%lld lost=%lld\n",
              static_cast<long long>(r.submitted),
              static_cast<long long>(r.accepted),
              static_cast<long long>(r.resolved),
              static_cast<long long>(r.lost));
  std::printf("  swaps=%lld drain p50=%.2fms max=%.2fms\n",
              static_cast<long long>(r.swaps_requested), r.drain_p50_ms,
              r.drain_max_ms);
  std::printf("  corrupt deploys=%lld rejected=%lld auto-rollbacks=%lld\n",
              static_cast<long long>(r.corrupt_deploys),
              static_cast<long long>(r.corrupt_rejected),
              static_cast<long long>(r.auto_rollbacks));
  std::printf("  %s\n", r.passed ? "PASSED" : "FAILED");
  return r;
}

void write_json(const std::string& path, bench::Scale scale,
                const SpinupResult* spinup, const SoakResult* soak) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot write " + path);
  std::fprintf(f, "{\n  \"bench\": \"artifact\",\n  \"scale\": \"%s\"",
               bench::scale_name(scale));
  if (spinup != nullptr) {
    std::fprintf(f,
                 ",\n  \"spinup\": {\n"
                 "    \"checkpoint_load_ms\": %.3f,\n"
                 "    \"artifact_load_ms\": %.3f,\n"
                 "    \"replica_zero_copy_us\": %.1f,\n"
                 "    \"replica_deep_copy_us\": %.1f,\n"
                 "    \"artifact_bytes\": %llu\n  }",
                 spinup->checkpoint_load_ms, spinup->artifact_load_ms,
                 spinup->borrow_spinup_us, spinup->deepcopy_spinup_us,
                 static_cast<unsigned long long>(spinup->artifact_bytes));
  }
  if (soak != nullptr) {
    std::fprintf(f,
                 ",\n  \"soak\": {\n"
                 "    \"seconds\": %.3f,\n"
                 "    \"submitted\": %lld,\n"
                 "    \"accepted\": %lld,\n"
                 "    \"resolved\": %lld,\n"
                 "    \"lost\": %lld,\n"
                 "    \"swaps\": %lld,\n"
                 "    \"drain_ms\": {\"p50\": %.3f, \"max\": %.3f},\n"
                 "    \"corrupt_deploys\": %lld,\n"
                 "    \"corrupt_rejected\": %lld,\n"
                 "    \"auto_rollbacks\": %lld,\n"
                 "    \"passed\": %s\n  }",
                 soak->elapsed_s, static_cast<long long>(soak->submitted),
                 static_cast<long long>(soak->accepted),
                 static_cast<long long>(soak->resolved),
                 static_cast<long long>(soak->lost),
                 static_cast<long long>(soak->swaps_requested),
                 soak->drain_p50_ms, soak->drain_max_ms,
                 static_cast<long long>(soak->corrupt_deploys),
                 static_cast<long long>(soak->corrupt_rejected),
                 static_cast<long long>(soak->auto_rollbacks),
                 soak->passed ? "true" : "false");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    const bench::Scale scale = bench::read_scale();
    bench::BenchSetup setup = bench::setup_for(scale);
    std::printf("== Artifact bench (scale: %s) ==\n",
                bench::scale_name(scale));

    // Artifact benches measure deployment mechanics, not accuracy: an
    // untrained VGG-11 has the same layout, size, and conversion cost as a
    // trained one, so skip the training stage entirely.
    const bench::BenchData data = bench::make_data(10, setup);
    dnn::ModelConfig mc;
    mc.width = setup.width_for(core::Architecture::kVgg11);
    mc.num_classes = 10;
    std::filesystem::create_directories(work_dir());

    std::vector<std::string> versions;
    std::unique_ptr<snn::SnnNetwork> net;
    for (std::uint64_t v = 0; v < 2; ++v) {
      Rng rng(3 + v);  // same topology, different weights: hot-swappable
      auto model = core::build_model(core::Architecture::kVgg11, mc, rng);
      const core::ActivationProfile profile =
          core::collect_activations(*model, data.train);
      core::ConversionConfig cc;
      cc.time_steps = 3;
      auto converted = core::convert(*model, profile, cc, nullptr);
      artifact::PackOptions po;
      po.input_shape = Shape(data.test.images.shape().begin() + 1,
                             data.test.images.shape().end());
      const std::string path =
          work_dir() + "/bench_v" + std::to_string(v + 1) + ".art";
      artifact::pack_network(*converted, path, po);
      versions.push_back(path);
      if (v == 0) net = std::move(converted);
    }
    // The corrupt candidate: a valid artifact with one payload byte flipped.
    const std::string corrupt = work_dir() + "/bench_corrupt.art";
    std::filesystem::copy_file(versions[0], corrupt,
                               std::filesystem::copy_options::overwrite_existing);
    robust::FaultInjector::corrupt_byte(
        corrupt, std::filesystem::file_size(corrupt) / 2, 0x20);

    SpinupResult spinup;
    bool have_spinup = false;
    if (opt.spinup) {
      spinup = run_spinup(*net, versions[0]);
      have_spinup = true;
    }
    SoakResult soak;
    bool have_soak = false;
    if (opt.soak) {
      soak = run_soak(opt, data.test, versions, corrupt);
      have_soak = true;
    }
    if (!opt.json_path.empty()) {
      write_json(opt.json_path, scale, have_spinup ? &spinup : nullptr,
                 have_soak ? &soak : nullptr);
    }
    return have_soak && !soak.passed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_artifact: %s\n", e.what());
    return 1;
  }
}
