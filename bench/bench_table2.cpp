// Reproduces Table II: comparison with SOTA deep-SNN training approaches at
// their respective latencies, on the CIFAR-10 and CIFAR-100 analogues:
//
//   Wu et al. 2019 [8]     surrogate gradient from scratch, small CNN, T=12
//   Rathi et al. 2020 [7]  hybrid (conversion + SGL), VGG-16, T=5
//   Kundu et al. 2021 [26] hybrid, VGG-16, T=10
//   Deng et al. 2021 [15]  conversion only (max-act + bias), VGG-16, T=16
//   This work              hybrid with (alpha, beta) scaling, VGG-16, T=2
//
// Expected shape: this work matches the baselines' accuracy within a few
// points at 2.5-8x fewer time steps.
#include <cstdio>

#include "bench/common.h"
#include "src/snn/sgl_trainer.h"
#include "src/util/table.h"

using namespace ullsnn;

namespace {

// Wu et al.'s architecture: 5 conv + 2 linear, trained from scratch with
// surrogate gradients (no conversion initialization).
std::unique_ptr<snn::SnnNetwork> build_wu_snn(std::int64_t classes, float width,
                                              std::int64_t time_steps, Rng& rng) {
  auto net = std::make_unique<snn::SnnNetwork>(time_steps);
  const auto ch = [&](std::int64_t c) {
    return std::max<std::int64_t>(4, static_cast<std::int64_t>(c * width));
  };
  snn::IfConfig neuron;
  neuron.v_threshold = 1.0F;
  std::int64_t in_ch = 3;
  std::int64_t spatial = 32;
  const std::int64_t plan[] = {ch(64), ch(128), ch(256), ch(256), ch(512)};
  for (int i = 0; i < 5; ++i) {
    const std::int64_t out_ch = plan[i];
    Tensor w({out_ch, in_ch, 3, 3});
    kaiming_normal(w, in_ch * 9, rng);
    net->emplace<snn::SpikingConv2d>(std::move(w), Conv2dSpec{in_ch, out_ch, 3, 1, 1},
                                     neuron);
    if (i >= 1) {  // 4 pools: 32 -> 2
      net->emplace<snn::SpikingMaxPool>(Pool2dSpec{2, 2});
      spatial /= 2;
    }
    in_ch = out_ch;
  }
  net->emplace<snn::SpikingFlatten>();
  const std::int64_t features = in_ch * spatial * spatial;
  const std::int64_t hidden = ch(256);
  Tensor w1({hidden, features});
  kaiming_normal(w1, features, rng);
  net->emplace<snn::SpikingLinear>(std::move(w1), neuron, /*with_neuron=*/true);
  Tensor w2({classes, hidden});
  kaiming_normal(w2, hidden, rng);
  net->emplace<snn::SpikingLinear>(std::move(w2), snn::IfConfig{},
                                   /*with_neuron=*/false);
  return net;
}

double hybrid_accuracy(dnn::Sequential& model, const core::ActivationProfile& profile,
                       core::ConversionMode mode, std::int64_t t,
                       std::int64_t sgl_epochs, const bench::BenchData& data,
                       const bench::BenchSetup& setup) {
  core::ConversionConfig cc;
  cc.mode = mode;
  cc.time_steps = t;
  auto net = core::convert(model, profile, cc, nullptr);
  if (sgl_epochs > 0) {
    snn::SglConfig sc;
    sc.epochs = sgl_epochs;
    sc.batch_size = setup.batch_size;
    sc.augment = false;
    snn::SglTrainer sgl(*net, sc);
    sgl.fit(data.train);
  }
  return snn::evaluate_snn(*net, data.test, setup.batch_size);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Table II reproduction (scale: %s) ==\n", bench::scale_name(scale));

  Table table({"Dataset", "Approach", "Training type", "Architecture", "T",
               "Accuracy %"});
  for (const std::int64_t classes : {std::int64_t{10}, std::int64_t{100}}) {
    const bench::BenchData data = bench::make_data(classes, setup);
    const std::string ds = "CIFAR-" + std::to_string(classes);
    auto model = bench::trained_dnn(core::Architecture::kVgg16, classes, setup, data);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);

    // Wu et al. [8]: from-scratch surrogate training (CIFAR-10 only, as in
    // the paper's table). Budget a couple of epochs: at T=12 every epoch
    // costs ~12 forward+backward passes.
    if (classes == 10) {
      Rng rng(17);
      auto wu = build_wu_snn(classes, setup.width, 12, rng);
      snn::SglConfig sc;
      sc.epochs = std::max<std::int64_t>(setup.sgl_epochs / 2, 2);
      sc.lr = 5e-4F;  // from scratch needs a larger step than fine-tuning
      sc.batch_size = setup.batch_size;
      sc.augment = false;
      snn::SglTrainer sgl(*wu, sc);
      sgl.fit(data.train);
      const double acc = sgl.evaluate(data.test);
      table.add_row({ds, "Wu et al. [8]", "Surrogate gradient", "5 CONV, 2 linear",
                     "12", Table::fmt(100.0 * acc)});
      std::printf("[table2] %s Wu [8] T=12: %.2f%%\n", ds.c_str(), 100.0 * acc);
      std::fflush(stdout);
    }

    // Rathi et al. [7]: hybrid at T=5 (CIFAR-10 row in the paper).
    if (classes == 10) {
      const double acc =
          hybrid_accuracy(*model, profile, core::ConversionMode::kThresholdReLU, 5,
                          std::max<std::int64_t>(setup.sgl_epochs / 2, 2), data, setup);
      table.add_row({ds, "Rathi et al. [7]", "Hybrid training", "VGG-16", "5",
                     Table::fmt(100.0 * acc)});
      std::printf("[table2] %s Rathi [7] T=5: %.2f%%\n", ds.c_str(), 100.0 * acc);
      std::fflush(stdout);
    }

    // Kundu et al. [26]: hybrid at T=10.
    {
      const double acc =
          hybrid_accuracy(*model, profile, core::ConversionMode::kThresholdReLU, 10,
                          1, data, setup);
      table.add_row({ds, "Kundu et al. [26]", "Hybrid training", "VGG-16", "10",
                     Table::fmt(100.0 * acc)});
      std::printf("[table2] %s Kundu [26] T=10: %.2f%%\n", ds.c_str(), 100.0 * acc);
      std::fflush(stdout);
    }

    // Deng et al. [15]: conversion only at T=16.
    {
      const double acc = hybrid_accuracy(*model, profile, core::ConversionMode::kMaxAct,
                                         16, 0, data, setup);
      table.add_row({ds, "Deng et al. [15]", "DNN-to-SNN conversion", "VGG-16", "16",
                     Table::fmt(100.0 * acc)});
      std::printf("[table2] %s Deng [15] T=16: %.2f%%\n", ds.c_str(), 100.0 * acc);
      std::fflush(stdout);
    }

    // This work: (alpha, beta) conversion + SGL at T=2.
    {
      const double acc =
          hybrid_accuracy(*model, profile, core::ConversionMode::kOursAlphaBeta, 2,
                          setup.sgl_epochs, data, setup);
      table.add_row({ds, "This work", "Hybrid training", "VGG-16", "2",
                     Table::fmt(100.0 * acc)});
      std::printf("[table2] %s this work T=2: %.2f%%\n", ds.c_str(), 100.0 * acc);
      std::fflush(stdout);
    }
  }
  table.print("Table II: comparison with SOTA deep SNNs");
  bench::write_csv(table, "table2.csv");
  std::printf("\nShape to verify: 'This work' at T=2 is within a few points of the\n"
              "baselines that need 5-16 steps (2.5-8x latency reduction).\n");
  return 0;
}
