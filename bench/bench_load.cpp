// Open-loop load bench: locate the serving knee, then prove the overload
// controls hold past it.
//
// Unlike bench_serve's closed-loop soak (which self-throttles under
// overload and therefore cannot see it — coordinated omission), this bench
// drives the engine with serve::LoadGen: a Poisson arrival schedule fixed
// before the run, every request submitted on time regardless of engine
// state, latency measured from the intended arrival.
//
// Protocol:
//   1. Calibrate: closed-loop saturation run measures the engine's service
//      capacity (QPS) on this machine, so every sweep point is knee-relative
//      and the checked-in gates are machine-independent.
//   2. Sweep: one fresh engine per point at --rel multiples of the knee
//      (default 0.5, 0.75, 1.0, 1.5, 2.0, 3.0), reporting per-class goodput,
//      shed rate, and coordinated-omission-safe latency percentiles.
//   3. Gate (exit 1 on violation):
//        - exact conservation at every point, in both the generator's ledger
//          and the engine's own stats;
//        - zero watchdog terminations (shedding must act before timeouts);
//        - sub-knee: >= 99% of interactive submissions fulfilled;
//        - overload (>= 2x knee): fulfilled-request p99 within 2x of the
//          sub-knee p99 — shedding keeps admitted work fast;
//        - overload: interactive goodput strictly above batch goodput
//          (priority inversion absent);
//        - goodput retention: supra-knee goodput >= 80% of the best
//          sub/at-knee goodput (monotone-nondecreasing up to noise);
//        - clean drain from the deepest overload point: queue empty and
//          ledger balanced after the offered load stops.
//
// Fault mode (--stall-rate/--stall-ms/--slow-replicas/--slow-factor) routes
// robust::FaultInjector worker-stall and slow-replica faults through the
// engine's chaos hooks; the same gates must hold, which is the "watchdog +
// shedding keep goodput monotone under partial failure" claim.
//
// Options: --seconds N (per sweep point), --workers N, --rel "0.5,1,2",
//          --base-qps Q (skip calibration; Q becomes the knee),
//          --stall-rate R --stall-ms M, --slow-replicas R --slow-factor F,
//          --json PATH.
//
// The JSON snapshot (tools/bench_to_json.sh load) is the checked-in
// bench/BENCH_load.json baseline; tools/compare_bench.py --load re-checks
// the gate booleans.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/robust/fault_injector.h"
#include "src/serve/engine.h"
#include "src/serve/loadgen.h"
#include "src/util/mutex.h"
#include "src/util/timer.h"

using namespace ullsnn;

namespace {

struct Options {
  double seconds = -1.0;  // per sweep point; <0 = scale default
  std::int64_t workers = 2;
  std::vector<double> rel = {0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
  double base_qps = 0.0;  // >0 skips calibration
  double stall_rate = 0.0;
  std::int64_t stall_ms = 20;
  double slow_replica_rate = 0.0;
  double slow_replica_factor = 3.0;
  std::string json_path;
};

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> values;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) values.push_back(std::stod(item));
  }
  if (values.empty()) {
    throw std::invalid_argument("--rel needs a non-empty comma list");
  }
  std::sort(values.begin(), values.end());
  return values;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--seconds") {
      opt.seconds = std::stod(next());
    } else if (arg == "--workers") {
      opt.workers = std::stoll(next());
    } else if (arg == "--rel") {
      opt.rel = parse_list(next());
    } else if (arg == "--base-qps") {
      opt.base_qps = std::stod(next());
    } else if (arg == "--stall-rate") {
      opt.stall_rate = std::stod(next());
    } else if (arg == "--stall-ms") {
      opt.stall_ms = std::stoll(next());
    } else if (arg == "--slow-replicas") {
      opt.slow_replica_rate = std::stod(next());
    } else if (arg == "--slow-factor") {
      opt.slow_replica_factor = std::stod(next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  if (opt.workers <= 0) throw std::invalid_argument("--workers must be positive");
  if (opt.stall_rate < 0.0 || opt.stall_rate > 1.0) {
    throw std::invalid_argument("--stall-rate must be in [0, 1]");
  }
  if (opt.slow_replica_rate < 0.0 || opt.slow_replica_rate > 1.0) {
    throw std::invalid_argument("--slow-replicas must be in [0, 1]");
  }
  return opt;
}

/// The engine ledger must balance exactly at quiescence (see ServeStats).
bool engine_conserved(const serve::ServeStats& s) {
  return s.submitted == s.accepted + s.rejected + s.shed_admission &&
         s.accepted == s.completed_ok + s.completed_degraded +
                           s.shed_deadline + s.shed_load + s.unavailable +
                           s.timeouts + s.errors;
}

/// Shared engine configuration for calibration and every sweep point. The
/// fault hooks (when enabled) are installed on top by make_engine.
serve::ServeConfig base_config(const Options& opt, const Shape& input_shape) {
  serve::ServeConfig config;
  config.workers = opt.workers;
  config.queue_capacity = 64;        // interactive lane
  config.batch_queue_capacity = 64;  // batch lane
  config.batcher.max_batch = 8;
  config.default_deadline = std::chrono::milliseconds(250);
  config.request_timeout = std::chrono::milliseconds(20000);
  config.max_attempts = 2;
  config.retry_backoff = std::chrono::microseconds(50);
  config.input_shape = input_shape;
  return config;
}

/// Per-worker slowdown routing: the chaos hooks carry no worker index, so
/// slow-replica delays key off a dense index assigned to each worker thread
/// on first sight. Assignment order is nondeterministic but the *number* of
/// slow workers is fixed by the injector's pure hash, which is what the
/// goodput gates depend on.
struct SlowReplicaRouter {
  robust::FaultInjector* injector;
  double per_batch_ms;  // nominal batch service time at calibrated capacity
  Mutex mu;
  std::map<std::thread::id, std::int64_t> dense GUARDED_BY(mu);

  void before_forward() {
    std::int64_t index = 0;
    {
      MutexLock lock(mu);
      const auto it = dense.find(std::this_thread::get_id());
      if (it == dense.end()) {
        index = static_cast<std::int64_t>(dense.size());
        dense.emplace(std::this_thread::get_id(), index);
      } else {
        index = it->second;
      }
    }
    const double factor = injector->replica_slowdown(index);
    if (factor > 1.0 && per_batch_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          per_batch_ms * (factor - 1.0)));
    }
  }
};

struct EngineHarness {
  std::unique_ptr<serve::ServeEngine> engine;
  std::shared_ptr<robust::FaultInjector> injector;
  std::shared_ptr<SlowReplicaRouter> router;
};

EngineHarness make_engine(const Options& opt, const Shape& input_shape,
                          const serve::NetworkFactory& factory,
                          bool with_faults, double per_batch_ms) {
  EngineHarness h;
  serve::ServeConfig config = base_config(opt, input_shape);
  if (with_faults &&
      (opt.stall_rate > 0.0 || opt.slow_replica_rate > 0.0)) {
    robust::FaultSpec spec;
    spec.stall_rate = opt.stall_rate;
    spec.stall_ms = std::chrono::milliseconds(opt.stall_ms);
    spec.slow_replica_rate = opt.slow_replica_rate;
    spec.slow_replica_factor = opt.slow_replica_factor;
    h.injector = std::make_shared<robust::FaultInjector>(spec);
    h.router = std::make_shared<SlowReplicaRouter>();
    h.router->injector = h.injector.get();
    h.router->per_batch_ms = per_batch_ms;
    auto injector = h.injector;
    auto router = h.router;
    config.before_forward_hook =
        [injector, router](const std::vector<std::int64_t>&, std::int64_t,
                           snn::SnnNetwork&) {
          injector->maybe_stall();
          router->before_forward();
        };
  }
  h.engine = std::make_unique<serve::ServeEngine>(config, factory);
  return h;
}

/// Closed-loop saturation run: keep a deep backlog of no-deadline requests
/// in flight and measure completion throughput. That plateau is the service
/// capacity — the knee of the open-loop latency curve.
double calibrate_capacity_qps(const Options& opt, const Shape& input_shape,
                              const serve::NetworkFactory& factory,
                              const std::vector<Tensor>& images,
                              double seconds) {
  EngineHarness h =
      make_engine(opt, input_shape, factory, /*with_faults=*/false, 0.0);
  h.engine->start();
  constexpr std::int64_t kWave = 32;
  std::size_t image_index = 0;
  std::int64_t completed = 0;
  const auto submit_wave = [&] {
    std::vector<serve::ResponseFuture> futures;
    futures.reserve(kWave);
    for (std::int64_t k = 0; k < kWave; ++k) {
      Tensor image = images[image_index];
      image_index = (image_index + 1) % images.size();
      serve::SubmitOptions options;
      options.deadline = std::chrono::milliseconds(0);  // no deadline
      serve::SubmitResult r = h.engine->submit(std::move(image), options);
      if (r.accepted) futures.push_back(std::move(r.future));
    }
    return futures;
  };
  // Warmup wave (replica construction, cache effects) is not measured.
  for (const serve::ResponseFuture& f : submit_wave()) f.get();
  Timer wall;
  while (wall.seconds() < seconds) {
    for (const serve::ResponseFuture& f : submit_wave()) {
      f.get();
      ++completed;
    }
  }
  const double elapsed = wall.seconds();
  h.engine->stop();
  return elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
}

struct SweepPoint {
  double rel = 0.0;
  double qps = 0.0;
  serve::LoadReport report;
  serve::ServeStats stats;
  std::int64_t brownout_deepest = 0;
  std::int64_t breaker_trips = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double max_lag_ms = 0.0;
  bool conserved = false;  // generator ledger AND engine ledger
  bool drained = false;    // queue empty after the offered load stopped
};

SweepPoint run_point(const Options& opt, const Shape& input_shape,
                     const serve::NetworkFactory& factory,
                     const std::vector<Tensor>& images, double rel,
                     double qps, double seconds, double per_batch_ms) {
  SweepPoint point;
  point.rel = rel;
  point.qps = qps;

  EngineHarness h =
      make_engine(opt, input_shape, factory, /*with_faults=*/true, per_batch_ms);
  h.engine->start();

  // Warm every worker replica before the measured run: first-batch replica
  // construction would otherwise back the queue up and escalate brownout
  // even far below the knee.
  {
    std::vector<serve::ResponseFuture> warm;
    for (std::int64_t k = 0; k < 2 * opt.workers * 8; ++k) {
      Tensor image = images[static_cast<std::size_t>(k) % images.size()];
      serve::SubmitOptions options;
      options.deadline = std::chrono::milliseconds(0);  // no deadline
      serve::SubmitResult r = h.engine->submit(std::move(image), options);
      if (r.accepted) warm.push_back(std::move(r.future));
    }
    for (const serve::ResponseFuture& f : warm) f.get();
  }
  // Ledger snapshot after warmup: the cross-check against the generator's
  // report compares deltas so warmup traffic does not skew it.
  const serve::ServeStats pre = h.engine->stats();

  serve::LoadGenConfig lg;
  lg.qps = qps;
  lg.duration = std::chrono::milliseconds(static_cast<std::int64_t>(seconds * 1000.0));
  lg.interactive_fraction = 0.8;
  lg.interactive_deadline = {std::chrono::milliseconds(40),
                             std::chrono::milliseconds(80)};
  lg.batch_deadline = {std::chrono::milliseconds(200),
                       std::chrono::milliseconds(400)};
  lg.collectors = 2;
  lg.seed = 0x10AD + static_cast<std::uint64_t>(rel * 1000.0);
  lg.images = images;
  serve::LoadGen gen(lg);
  point.report = gen.run(*h.engine);

  // run() returns only after every accepted future resolved, so the engine
  // should be idle: an empty queue here is the clean-drain evidence.
  Timer drain;
  while (h.engine->queue_depth() > 0 && drain.seconds() < 2.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  point.drained = h.engine->queue_depth() == 0;
  point.stats = h.engine->stats();
  point.brownout_deepest = h.engine->brownout().deepest_reached();
  point.breaker_trips = h.engine->breaker().trips();
  h.engine->stop();

  const serve::LogHistogram merged = point.report.merged_latency();
  point.p50 = merged.percentile(0.50);
  point.p95 = merged.percentile(0.95);
  point.p99 = merged.percentile(0.99);
  point.max_lag_ms = point.report.max_submit_lag_ms;
  point.conserved =
      point.report.conserved() && engine_conserved(point.stats) &&
      point.report.submitted() == point.stats.submitted - pre.submitted;
  return point;
}

struct Gates {
  bool conservation = true;
  bool zero_watchdog = true;
  bool sub_knee_interactive = true;   // evaluated when a rel <= 0.75 point exists
  bool p99_bounded = true;            // evaluated when a rel >= 2 point exists
  bool priority_order = true;         // evaluated when a rel >= 2 point exists
  bool goodput_retained = true;       // evaluated with >= 2 points
  bool clean_drain = true;

  bool passed() const {
    return conservation && zero_watchdog && sub_knee_interactive &&
           p99_bounded && priority_order && goodput_retained && clean_drain;
  }
};

Gates evaluate_gates(const std::vector<SweepPoint>& points) {
  Gates gates;
  const SweepPoint* sub_knee = nullptr;   // deepest sub-knee point
  double best_at_or_below_knee = 0.0;
  for (const SweepPoint& p : points) {
    if (!p.conserved) {
      std::printf("FAIL: conservation violated at rel %.2f (%.0f qps)\n",
                  p.rel, p.qps);
      gates.conservation = false;
    }
    if (p.stats.timeouts != 0) {
      std::printf("FAIL: %lld watchdog termination(s) at rel %.2f — "
                  "shedding must act before the watchdog\n",
                  static_cast<long long>(p.stats.timeouts), p.rel);
      gates.zero_watchdog = false;
    }
    if (p.rel <= 0.75 && (sub_knee == nullptr || p.rel > sub_knee->rel)) {
      sub_knee = &p;
    }
    if (p.rel <= 1.0 + 1e-9) {
      best_at_or_below_knee =
          std::max(best_at_or_below_knee, p.report.goodput_qps());
    }
  }
  if (sub_knee != nullptr) {
    const serve::ClassLoadStats& interactive =
        sub_knee->report.cls(serve::Priority::kInteractive);
    const double rate =
        interactive.submitted > 0
            ? static_cast<double>(interactive.fulfilled()) /
                  static_cast<double>(interactive.submitted)
            : 1.0;
    if (rate < 0.99) {
      std::printf("FAIL: sub-knee interactive fulfillment %.4f < 0.99 "
                  "(rel %.2f)\n",
                  rate, sub_knee->rel);
      gates.sub_knee_interactive = false;
    }
  }
  for (const SweepPoint& p : points) {
    if (p.rel < 2.0 - 1e-9) continue;
    if (sub_knee != nullptr && sub_knee->p99 > 0.0 &&
        p.p99 > 2.0 * sub_knee->p99 + 5.0) {
      std::printf("FAIL: fulfilled p99 %.2f ms at rel %.2f exceeds 2x the "
                  "sub-knee p99 %.2f ms\n",
                  p.p99, p.rel, sub_knee->p99);
      gates.p99_bounded = false;
    }
    if (p.report.goodput_qps(serve::Priority::kInteractive) <=
        p.report.goodput_qps(serve::Priority::kBatch)) {
      std::printf("FAIL: priority inversion at rel %.2f — interactive "
                  "goodput %.1f qps <= batch %.1f qps\n",
                  p.rel, p.report.goodput_qps(serve::Priority::kInteractive),
                  p.report.goodput_qps(serve::Priority::kBatch));
      gates.priority_order = false;
    }
    if (best_at_or_below_knee > 0.0 &&
        p.report.goodput_qps() < 0.8 * best_at_or_below_knee) {
      std::printf("FAIL: goodput collapse at rel %.2f — %.1f qps < 80%% of "
                  "the %.1f qps sub-knee plateau\n",
                  p.rel, p.report.goodput_qps(), best_at_or_below_knee);
      gates.goodput_retained = false;
    }
  }
  if (!points.empty() && !points.back().drained) {
    std::printf("FAIL: queue did not drain after the rel %.2f overload run\n",
                points.back().rel);
    gates.clean_drain = false;
  }
  return gates;
}

void write_json(const std::string& path, const Options& opt,
                bench::Scale scale, double capacity_qps,
                const std::vector<SweepPoint>& points, const Gates& gates) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot write " + path);
  std::fprintf(f,
               "{\n  \"bench\": \"load\",\n  \"scale\": \"%s\",\n"
               "  \"loop\": \"open\",\n  \"workers\": %lld,\n"
               "  \"knee_qps\": %.1f,\n"
               "  \"faults\": {\"stall_rate\": %.4f, \"stall_ms\": %lld, "
               "\"slow_replica_rate\": %.4f, \"slow_replica_factor\": %.2f},\n"
               "  \"points\": [",
               bench::scale_name(scale), static_cast<long long>(opt.workers),
               capacity_qps, opt.stall_rate,
               static_cast<long long>(opt.stall_ms), opt.slow_replica_rate,
               opt.slow_replica_factor);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const serve::LoadReport& r = p.report;
    const serve::ClassLoadStats& ia = r.cls(serve::Priority::kInteractive);
    const serve::ClassLoadStats& ba = r.cls(serve::Priority::kBatch);
    std::fprintf(
        f,
        "%s\n    {\"rel\": %.2f, \"qps\": %.1f, \"submitted\": %lld, "
        "\"accepted\": %lld, \"rejected\": %lld, \"shed_admission\": %lld,\n"
        "     \"fulfilled\": %lld, \"shed\": %lld, \"failed\": %lld, "
        "\"goodput_qps\": %.1f, \"shed_rate\": %.4f,\n"
        "     \"interactive\": {\"submitted\": %lld, \"fulfilled\": %lld, "
        "\"goodput_qps\": %.1f},\n"
        "     \"batch\": {\"submitted\": %lld, \"fulfilled\": %lld, "
        "\"goodput_qps\": %.1f},\n"
        "     \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f},\n"
        "     \"max_submit_lag_ms\": %.2f, \"watchdog_timeouts\": %lld, "
        "\"brownout_deepest\": %lld, \"breaker_trips\": %lld,\n"
        "     \"conserved\": %s, \"drained\": %s}",
        i == 0 ? "" : ",", p.rel, p.qps,
        static_cast<long long>(r.submitted()),
        static_cast<long long>(ia.accepted + ba.accepted),
        static_cast<long long>(ia.rejected + ba.rejected),
        static_cast<long long>(ia.shed_admission + ba.shed_admission),
        static_cast<long long>(r.fulfilled()),
        static_cast<long long>(r.shed()), static_cast<long long>(r.failed()),
        r.goodput_qps(), r.shed_rate(), static_cast<long long>(ia.submitted),
        static_cast<long long>(ia.fulfilled()),
        r.goodput_qps(serve::Priority::kInteractive),
        static_cast<long long>(ba.submitted),
        static_cast<long long>(ba.fulfilled()),
        r.goodput_qps(serve::Priority::kBatch), p.p50, p.p95, p.p99,
        p.max_lag_ms, static_cast<long long>(p.stats.timeouts),
        static_cast<long long>(p.brownout_deepest),
        static_cast<long long>(p.breaker_trips),
        p.conserved ? "true" : "false", p.drained ? "true" : "false");
  }
  std::fprintf(
      f,
      "\n  ],\n  \"gates\": {\"conservation\": %s, \"zero_watchdog\": %s, "
      "\"sub_knee_interactive\": %s, \"p99_bounded\": %s, "
      "\"priority_order\": %s, \"goodput_retained\": %s, "
      "\"clean_drain\": %s},\n  \"passed\": %s\n}\n",
      gates.conservation ? "true" : "false",
      gates.zero_watchdog ? "true" : "false",
      gates.sub_knee_interactive ? "true" : "false",
      gates.p99_bounded ? "true" : "false",
      gates.priority_order ? "true" : "false",
      gates.goodput_retained ? "true" : "false",
      gates.clean_drain ? "true" : "false", gates.passed() ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opt = parse_options(argc, argv);
    const bench::Scale scale = bench::read_scale();
    if (opt.seconds <= 0.0) {
      opt.seconds = scale == bench::Scale::kQuick
                        ? 1.5
                        : (scale == bench::Scale::kFull ? 8.0 : 4.0);
    }
    std::printf("== Open-loop load bench (scale: %s) ==\n",
                bench::scale_name(scale));

    const core::Architecture arch = core::Architecture::kVgg11;
    const bench::BenchSetup setup = bench::setup_for(scale);
    const bench::BenchData data = bench::make_data(10, setup);
    auto model = bench::trained_dnn(arch, 10, setup, data);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);
    core::ConversionConfig cc;
    cc.time_steps = 3;
    const serve::NetworkFactory factory = [&model, &profile, cc] {
      return core::convert(*model, profile, cc, nullptr);
    };

    const Tensor& test_images = data.test.images;
    const std::int64_t samples = std::min<std::int64_t>(64, data.test.size());
    const std::int64_t sample_numel = test_images.numel() / data.test.size();
    const Shape input_shape(test_images.shape().begin() + 1,
                            test_images.shape().end());
    std::vector<Tensor> images;
    images.reserve(static_cast<std::size_t>(samples));
    for (std::int64_t s = 0; s < samples; ++s) {
      Tensor image(input_shape);
      std::memcpy(image.data(), test_images.data() + s * sample_numel,
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
      images.push_back(std::move(image));
    }

    double knee_qps = opt.base_qps;
    if (knee_qps <= 0.0) {
      const double calib_seconds = scale == bench::Scale::kQuick ? 1.0 : 2.0;
      knee_qps = calibrate_capacity_qps(opt, input_shape, factory, images,
                                        calib_seconds);
      std::printf("[load] calibrated service capacity: %.1f qps "
                  "(%lld workers)\n",
                  knee_qps, static_cast<long long>(opt.workers));
    } else {
      std::printf("[load] using --base-qps %.1f as the knee\n", knee_qps);
    }
    if (knee_qps <= 0.0) throw std::runtime_error("capacity calibration failed");
    // The per-batch service time the slow-replica delay scales against.
    const double per_batch_ms = 8.0 * 1000.0 / knee_qps;

    std::vector<SweepPoint> points;
    Table table({"rel", "offered qps", "goodput", "interactive", "batch",
                 "shed %", "p50 ms", "p99 ms", "timeouts", "brownout"});
    for (const double rel : opt.rel) {
      const double qps = rel * knee_qps;
      std::printf("[load] rel %.2f: %.1f qps for %.1fs...\n", rel, qps,
                  opt.seconds);
      std::fflush(stdout);
      SweepPoint p = run_point(opt, input_shape, factory, images, rel, qps,
                               opt.seconds, per_batch_ms);
      table.add_row({Table::fmt(p.rel), Table::fmt(p.qps, 1),
                     Table::fmt(p.report.goodput_qps(), 1),
                     Table::fmt(p.report.goodput_qps(serve::Priority::kInteractive), 1),
                     Table::fmt(p.report.goodput_qps(serve::Priority::kBatch), 1),
                     Table::fmt(100.0 * p.report.shed_rate(), 2),
                     Table::fmt(p.p50, 2), Table::fmt(p.p99, 2),
                     std::to_string(p.stats.timeouts),
                     std::to_string(p.brownout_deepest)});
      points.push_back(std::move(p));
    }
    table.print("Open-loop QPS sweep");
    bench::write_csv(table, "load_sweep.csv");

    const Gates gates = evaluate_gates(points);
    if (!opt.json_path.empty()) {
      write_json(opt.json_path, opt, scale, knee_qps, points, gates);
    }
    if (gates.passed()) {
      std::printf("load PASS: knee %.1f qps; overload controls held across "
                  "%zu sweep points\n",
                  knee_qps, points.size());
      return 0;
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_load: %s\n", e.what());
    return 1;
  }
}
