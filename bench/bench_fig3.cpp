// Reproduces Fig. 3: simulation time per epoch and memory consumption of
// (i) the proposed hybrid training at T=2 and T=3 versus (ii) the baseline
// direct-encoded hybrid training at T=5 [7], for VGG-16 on the CIFAR-10 and
// CIFAR-100 analogues. An iso-architecture DNN epoch is included for
// reference.
//
// Expected shape: training/inference time and training memory scale roughly
// linearly with T, so T=2 cuts both by ~2.4x vs T=5 (paper: 2.38x / 2.33x
// time, 1.44x training memory), while inference memory is nearly identical
// (dominated by weights + membrane state, not the BPTT activation cache).
#include <cstdio>

#include "bench/common.h"
#include "src/energy/memory_model.h"
#include "src/snn/sgl_trainer.h"
#include "src/util/table.h"
#include "src/util/timer.h"

using namespace ullsnn;

namespace {

struct TimedRun {
  double train_epoch_s = 0.0;
  double inference_s = 0.0;
  energy::MemoryEstimate train_mem;
  energy::MemoryEstimate infer_mem;
};

TimedRun time_snn(dnn::Sequential& model, const core::ActivationProfile& profile,
                  std::int64_t t, core::ConversionMode mode,
                  const bench::BenchData& data, const bench::BenchSetup& setup) {
  core::ConversionConfig cc;
  cc.mode = mode;
  cc.time_steps = t;
  auto snn = core::convert(model, profile, cc, nullptr);

  TimedRun run;
  snn::SglConfig sc;
  sc.epochs = 1;
  sc.batch_size = setup.batch_size;
  sc.augment = false;
  snn::SglTrainer sgl(*snn, sc);
  Timer timer;
  sgl.train_epoch(data.train, 0);
  run.train_epoch_s = timer.seconds();

  timer.reset();
  snn::evaluate_snn(*snn, data.test, setup.batch_size);
  run.inference_s = timer.seconds();

  const Shape input_shape = {1, 3, data.spec.image_size, data.spec.image_size};
  run.train_mem =
      energy::estimate_snn_training_memory(*snn, input_shape, setup.batch_size, t);
  run.infer_mem =
      energy::estimate_snn_inference_memory(*snn, input_shape, setup.batch_size);
  return run;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Fig. 3 reproduction (scale: %s) ==\n", bench::scale_name(scale));

  Table table({"Dataset", "Model / T", "train s/epoch", "infer s", "train mem MiB",
               "infer mem MiB"});
  for (const std::int64_t classes : {std::int64_t{10}, std::int64_t{100}}) {
    const bench::BenchData data = bench::make_data(classes, setup);
    auto model = bench::trained_dnn(core::Architecture::kVgg16, classes, setup, data);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);
    const std::string ds = "CIFAR-" + std::to_string(classes);

    // DNN reference epoch.
    {
      dnn::TrainConfig tc;
      tc.epochs = 1;
      tc.batch_size = setup.batch_size;
      tc.augment = false;
      dnn::DnnTrainer trainer(*model, tc);
      Timer timer;
      trainer.train_epoch(data.train, 0);
      const double train_s = timer.seconds();
      timer.reset();
      dnn::evaluate_model(*model, data.test, setup.batch_size);
      const double infer_s = timer.seconds();
      const Shape in = {1, 3, data.spec.image_size, data.spec.image_size};
      const auto tm = energy::estimate_dnn_training_memory(*model, in, setup.batch_size);
      const auto im = energy::estimate_dnn_inference_memory(*model, in, setup.batch_size);
      table.add_row({ds, "DNN (reference)", Table::fmt(train_s), Table::fmt(infer_s),
                     Table::fmt(tm.total_mib()), Table::fmt(im.total_mib())});
    }

    TimedRun t2;
    TimedRun t5;
    for (const std::int64_t t : {2, 3, 5}) {
      const core::ConversionMode mode = t == 5 ? core::ConversionMode::kThresholdReLU
                                               : core::ConversionMode::kOursAlphaBeta;
      const TimedRun run = time_snn(*model, profile, t, mode, data, setup);
      if (t == 2) t2 = run;
      if (t == 5) t5 = run;
      const std::string label =
          t == 5 ? "hybrid [7], T=5" : "ours, T=" + std::to_string(t);
      table.add_row({ds, label, Table::fmt(run.train_epoch_s),
                     Table::fmt(run.inference_s), Table::fmt(run.train_mem.total_mib()),
                     Table::fmt(run.infer_mem.total_mib())});
      std::printf("[fig3] %s %s: train %.2fs/epoch, infer %.2fs\n", ds.c_str(),
                  label.c_str(), run.train_epoch_s, run.inference_s);
      std::fflush(stdout);
    }
    std::printf("[fig3] %s ratios T=5/T=2: train %.2fx, infer %.2fx, "
                "train-mem %.2fx (paper: 2.38x, 2.33x, 1.44x)\n",
                ds.c_str(), t5.train_epoch_s / t2.train_epoch_s,
                t5.inference_s / t2.inference_s,
                t5.train_mem.total_mib() / t2.train_mem.total_mib());
  }
  table.print("Fig. 3: simulation time and memory, VGG-16");
  bench::write_csv(table, "fig3.csv");
  return 0;
}
