// Reproduces Fig. 2: conversion-only test accuracy vs number of SNN time
// steps for (i) threshold-ReLU conversion (V_th = trained mu, bias shift)
// and (ii) max-pre-activation conversion (Deng et al. [15] style), on VGG
// and ResNet architectures.
//
// Expected shape: both curves fall off a cliff below T ~ 8; max-act falls
// harder (its threshold is an outlier of the skewed distribution); the gap
// to the DNN closes as T grows.
#include <cstdio>

#include "bench/common.h"
#include "src/util/table.h"

using namespace ullsnn;

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Fig. 2 reproduction (scale: %s) ==\n", bench::scale_name(scale));

  const core::Architecture archs[] = {core::Architecture::kVgg11,
                                      core::Architecture::kVgg16,
                                      core::Architecture::kResNet20};
  const std::int64_t ts[] = {1, 2, 3, 4, 8, 16, 32};

  Table table({"Architecture", "Conversion", "T", "SNN accuracy %", "DNN accuracy %"});
  for (const core::Architecture arch : archs) {
    const bench::BenchData data = bench::make_data(10, setup);
    double dnn_acc = 0.0;
    auto model = bench::trained_dnn(arch, 10, setup, data, &dnn_acc);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);
    for (const core::ConversionMode mode :
         {core::ConversionMode::kThresholdReLU, core::ConversionMode::kMaxAct}) {
      for (const std::int64_t t : ts) {
        core::ConversionConfig cc;
        cc.mode = mode;
        cc.time_steps = t;
        auto snn = core::convert(*model, profile, cc, nullptr);
        const double acc = snn::evaluate_snn(*snn, data.test, setup.batch_size);
        table.add_row({std::string(core::to_string(arch)),
                       std::string(core::to_string(mode)), std::to_string(t),
                       Table::fmt(100.0 * acc), Table::fmt(100.0 * dnn_acc)});
        std::printf("[fig2] %s %s T=%-3lld: %.2f%% (dnn %.2f%%)\n",
                    core::to_string(arch), core::to_string(mode),
                    static_cast<long long>(t), 100.0 * acc, 100.0 * dnn_acc);
        std::fflush(stdout);
      }
    }
  }
  table.print("Fig. 2: conversion-only accuracy vs time steps");
  bench::write_csv(table, "fig2.csv");
  std::printf("\nShape to verify: accuracy collapses for T <= 4; max-act [15]\n"
              "degrades more than threshold-ReLU at every low T.\n");
  return 0;
}
