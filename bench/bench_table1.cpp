// Reproduces Table I: model performance after (a) DNN training, (b) DNN->SNN
// conversion with the percentile (alpha, beta) search, and (c) SNN training
// (SGL), for VGG-11 / VGG-16 / ResNet-20 on the CIFAR-10 / CIFAR-100
// analogues at T in {2, 3}.
//
// Expected shape (paper, Table I): column (b) collapses well below (a) at
// these ultra-low T — dramatically so on CIFAR-100 — and column (c) recovers
// to within a few points of (a).
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/snn/sgl_trainer.h"
#include "src/util/table.h"

using namespace ullsnn;

namespace {

struct Row {
  core::Architecture arch;
  std::int64_t classes;
};

void run_row(const Row& row, const bench::BenchSetup& setup, Table& table) {
  const bench::BenchData data = bench::make_data(row.classes, setup);
  double dnn_acc = 0.0;
  auto model = bench::trained_dnn(row.arch, row.classes, setup, data, &dnn_acc);
  const core::ActivationProfile profile = core::collect_activations(*model, data.train);
  for (const std::int64_t t : {2, 3}) {
    core::ConversionConfig cc;
    cc.mode = core::ConversionMode::kOursAlphaBeta;
    cc.time_steps = t;
    auto snn = core::convert(*model, profile, cc, nullptr);
    const double conv_acc = snn::evaluate_snn(*snn, data.test, setup.batch_size);

    snn::SglConfig sc;
    sc.epochs = setup.sgl_epochs;
    sc.batch_size = setup.batch_size;
    sc.augment = false;
    snn::SglTrainer sgl(*snn, sc);
    sgl.fit(data.train);
    const double sgl_acc = sgl.evaluate(data.test);

    table.add_row({std::string(core::to_string(row.arch)),
                   "CIFAR-" + std::to_string(row.classes), std::to_string(t),
                   Table::fmt(100.0 * dnn_acc), Table::fmt(100.0 * conv_acc),
                   Table::fmt(100.0 * sgl_acc)});
    std::printf("[table1] %s / %lld classes / T=%lld: dnn %.2f%%  conv %.2f%%  sgl %.2f%%\n",
                core::to_string(row.arch), static_cast<long long>(row.classes),
                static_cast<long long>(t), 100.0 * dnn_acc, 100.0 * conv_acc,
                100.0 * sgl_acc);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const bench::Scale scale = bench::read_scale();
  const bench::BenchSetup setup = bench::setup_for(scale);
  std::printf("== Table I reproduction (scale: %s) ==\n", bench::scale_name(scale));

  Table table({"Architecture", "Dataset", "T", "(a) DNN %", "(b) converted %",
               "(c) after SGL %"});
  const Row rows[] = {
      {core::Architecture::kVgg11, 10},    {core::Architecture::kVgg16, 10},
      {core::Architecture::kResNet20, 10}, {core::Architecture::kVgg16, 100},
      {core::Architecture::kResNet20, 100},
  };
  for (const Row& row : rows) run_row(row, setup, table);
  table.print("Table I: accuracy after (a) DNN training, (b) conversion, (c) SGL");
  bench::write_csv(table, "table1.csv");
  std::printf("\nPaper reference (real CIFAR, full width): VGG-16/CIFAR-10 T=2:\n"
              "(a) 93.26, (b) 69.58, (c) 91.79. Shape to verify here: (b) well\n"
              "below (a), worst on CIFAR-100; (c) recovers close to (a).\n");
  return 0;
}
