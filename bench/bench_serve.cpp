// Serving chaos/soak bench: the resilient inference engine under load and
// injected faults, plus the accuracy-vs-T curve behind the degradation
// ladder.
//
// Modes (combinable; with no flags both run at a short default):
//
//   --soak       drive the ServeEngine with the synthetic test set for
//                --seconds wall-clock, injecting a transient fault into
//                --faults of all requests (deterministic id-keyed schedule).
//                Reports throughput, latency percentiles, retry/breaker
//                counters, and FAILS (exit 1) if fewer than 99% of accepted
//                in-deadline requests complete non-error or if the
//                admission ledger does not balance.
//                NOTE: this soak is CLOSED-LOOP — each wave waits for its
//                responses before submitting the next, so under overload
//                the driver throttles itself and the latencies describe a
//                gentler workload than requested (coordinated omission).
//                It remains the fault/conservation/accuracy gate; for
//                latency and goodput under offered load use bench_load,
//                whose open-loop generator does not self-throttle
//                (docs/serving.md, "Overload & shedding").
//   --accuracy   measure the ladder's accuracy cost: one SNN converted at
//                T=3 evaluated at T=3/2/1 (what the breaker actually does),
//                next to a fresh conversion at each T (the fair baseline).
//   --overhead   the observability cost gate: p99 under identical clean
//                load with the live endpoint off vs on (plus a 20 Hz
//                background /metrics scraper on the "on" leg). FAILS
//                (exit 1) if the endpoint costs more than 5% at the tail.
//
// Options: --seconds N, --faults R, --workers N, --json PATH,
//          --http PORT (soak only: serve /metrics,/healthz,/flight live;
//          0 = ephemeral. Adds a quiescent self-scrape that FAILS the soak
//          if /metrics disagrees with the engine's own ledger).
//
// The JSON snapshot (tools/bench_to_json.sh serve) is the checked-in
// bench/BENCH_serve.json serving baseline.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/serve/engine.h"
#include "src/util/timer.h"

using namespace ullsnn;

namespace {

struct Options {
  bool soak = false;
  bool accuracy = false;
  bool overhead = false;
  double seconds = 5.0;
  double fault_rate = 0.05;
  std::int64_t workers = 2;
  int http_port = -1;  // -1 = endpoint off; 0 = ephemeral; >0 = fixed port
  std::string json_path;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--soak") {
      opt.soak = true;
    } else if (arg == "--accuracy") {
      opt.accuracy = true;
    } else if (arg == "--overhead") {
      opt.overhead = true;
    } else if (arg == "--http") {
      opt.http_port = std::stoi(next());
    } else if (arg == "--seconds") {
      opt.seconds = std::stod(next());
    } else if (arg == "--faults") {
      opt.fault_rate = std::stod(next());
    } else if (arg == "--workers") {
      opt.workers = std::stoll(next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  if (!opt.soak && !opt.accuracy && !opt.overhead) {
    opt.soak = true;
    opt.accuracy = true;
  }
  if (opt.fault_rate < 0.0 || opt.fault_rate > 1.0) {
    throw std::invalid_argument("--faults must be in [0, 1]");
  }
  if (opt.http_port < -1 || opt.http_port > 65535) {
    throw std::invalid_argument("--http must be a port in [0, 65535]");
  }
  return opt;
}

// ---- minimal HTTP scrape client (mirrors tests/testutil/http_get.h) ----

struct ScrapeResult {
  bool ok = false;  // transport-level success (connect + full read)
  int status = 0;
  std::string body;
};

ScrapeResult http_get(int port, const std::string& target) {
  ScrapeResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return result;
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;
  result.body = raw.substr(header_end + 4);
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp > header_end) return result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  result.ok = true;
  return result;
}

/// Value of the single-series line `name value` in Prometheus 0.0.4 text;
/// NaN when the series is absent.
double scrape_value(const std::string& body, const std::string& name) {
  const std::string prefix = name + " ";
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::strtod(line.c_str() + prefix.size(), nullptr);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// At quiescence (every accepted future resolved, engine still running) the
/// exported serve.* series must agree EXACTLY with the engine's own ledger —
/// fulfillment publishes metrics before any waiter wakes, so there is no
/// window in which a drained client can out-race its own counters.
bool check_conservation(const std::string& metrics,
                        const serve::ServeStats& s) {
  struct Expect {
    const char* series;
    std::int64_t value;
  };
  const Expect expected[] = {
      {"serve_submitted", s.submitted},
      {"serve_accepted", s.accepted},
      {"serve_rejected", s.rejected},
      {"serve_completed_ok", s.completed_ok},
      {"serve_completed_degraded", s.completed_degraded},
      {"serve_timeouts", s.timeouts},
      {"serve_errors", s.errors},
      // Every accepted request is fulfilled exactly once, and every
      // fulfillment observes the total-latency histogram.
      {"serve_latency_total_ms_count", s.accepted},
  };
  bool ok = true;
  for (const Expect& e : expected) {
    const double got = scrape_value(metrics, e.series);
    if (std::isnan(got) ||
        static_cast<std::int64_t>(got) != e.value) {
      std::printf("FAIL: /metrics conservation: %s = %.0f, ledger says %lld\n",
                  e.series, got, static_cast<long long>(e.value));
      ok = false;
    }
  }
  return ok;
}

/// Deterministic per-request fault schedule: whether request `id` suffers a
/// transient fault on its first forward attempt. Keyed by a hash of the id,
/// not submission timing, so the faulted set is identical across runs and
/// thread interleavings.
bool fault_scheduled(std::int64_t id, double rate) {
  const auto h = static_cast<std::uint64_t>(id) * 1315423911ULL;
  return static_cast<double>(h % 10000ULL) < rate * 10000.0;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct SoakResult {
  serve::ServeStats stats;
  std::int64_t queue_peak = 0;
  std::int64_t trips = 0;
  std::int64_t recoveries = 0;
  std::int64_t correct = 0;
  std::int64_t successes = 0;
  std::int64_t faults_fired = 0;
  double elapsed_s = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double completion_rate = 0.0;
  // Live-endpoint probes (--http only).
  int http_port = 0;
  int healthz_status = 0;          // mid-soak /healthz HTTP status
  bool conservation_checked = false;
  bool conservation_ok = false;    // quiescent /metrics == engine ledger
  bool passed = false;
};

SoakResult run_soak(const Options& opt, const bench::BenchData& data,
                    const serve::NetworkFactory& factory) {
  std::printf("\n== Soak: %.0fs, fault rate %.1f%%, %lld worker(s) ==\n",
              opt.seconds, 100.0 * opt.fault_rate,
              static_cast<long long>(opt.workers));
  serve::ServeConfig config;
  config.workers = opt.workers;
  config.queue_capacity = 128;
  config.batcher.max_batch = 8;
  config.default_deadline = std::chrono::milliseconds(5000);
  config.request_timeout = std::chrono::milliseconds(20000);
  config.max_attempts = 3;
  config.retry_backoff = std::chrono::microseconds(50);
  const Tensor& images = data.test.images;
  const std::int64_t samples = data.test.size();
  const std::int64_t sample_numel = images.numel() / samples;
  config.input_shape = Shape(images.shape().begin() + 1, images.shape().end());

  std::atomic<std::int64_t> faults_fired{0};
  const double rate = opt.fault_rate;
  config.before_forward_hook = [rate, &faults_fired](
                                   const std::vector<std::int64_t>& ids,
                                   std::int64_t attempt, snn::SnnNetwork&) {
    if (attempt > 0) return;  // transient: retries run clean
    for (const std::int64_t id : ids) {
      if (fault_scheduled(id, rate)) {
        faults_fired.fetch_add(1);
        throw std::runtime_error("soak: injected transient fault");
      }
    }
  };

  if (opt.http_port >= 0) {
    config.obs.endpoint = true;
    config.obs.port = opt.http_port;
  }

  serve::ServeEngine engine(config, factory);
  engine.start();

  SoakResult result;
  if (opt.http_port >= 0) {
    result.http_port = engine.http_port();
    std::printf("[serve] live endpoint on 127.0.0.1:%d "
                "(/metrics /healthz /flight)\n",
                result.http_port);
  }
  bool probed_health = false;
  std::vector<double> latencies;
  Timer wall;
  std::int64_t cursor = 0;
  constexpr std::int64_t kWave = 32;
  while (wall.seconds() < opt.seconds) {
    std::vector<serve::ResponseFuture> futures;
    std::vector<std::int64_t> labels;
    futures.reserve(kWave);
    labels.reserve(kWave);
    for (std::int64_t k = 0; k < kWave; ++k) {
      const std::int64_t sample = cursor++ % samples;
      Tensor image(config.input_shape);
      std::memcpy(image.data(), images.data() + sample * sample_numel,
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
      serve::SubmitResult submitted = engine.submit(std::move(image));
      if (!submitted.accepted) continue;  // counted by the engine ledger
      futures.push_back(std::move(submitted.future));
      labels.push_back(data.test.labels[static_cast<std::size_t>(sample)]);
    }
    for (std::size_t k = 0; k < futures.size(); ++k) {
      const serve::InferResponse response = futures[k].get();
      if (serve::is_success(response.status)) {
        ++result.successes;
        latencies.push_back(response.total_ms);
        if (response.predicted == labels[k]) ++result.correct;
      }
    }
    // One live probe from mid-soak: /healthz must answer while the engine
    // is under chaos load (200 healthy or 503 with the breaker open — both
    // are correct answers; silence is the failure).
    if (opt.http_port >= 0 && !probed_health &&
        wall.seconds() > opt.seconds / 2) {
      const ScrapeResult health = http_get(result.http_port, "/healthz");
      result.healthz_status = health.ok ? health.status : 0;
      probed_health = true;
    }
  }
  result.elapsed_s = wall.seconds();

  if (opt.http_port >= 0) {
    // Quiescent self-scrape: every accepted future above has resolved and
    // nothing new is being submitted, so /metrics must agree exactly with
    // the engine's own ledger.
    const serve::ServeStats at_rest = engine.stats();
    const ScrapeResult scrape = http_get(result.http_port, "/metrics");
    result.conservation_checked = true;
    result.conservation_ok = scrape.ok && scrape.status == 200 &&
                             check_conservation(scrape.body, at_rest);
    if (!scrape.ok || scrape.status != 200) {
      std::printf("FAIL: /metrics scrape failed (transport %s, status %d)\n",
                  scrape.ok ? "ok" : "error", scrape.status);
    }
  }
  engine.stop();

  result.stats = engine.stats();
  result.queue_peak = engine.queue_peak_depth();
  result.trips = engine.breaker().trips();
  result.recoveries = engine.breaker().recoveries();
  result.faults_fired = faults_fired.load();
  std::sort(latencies.begin(), latencies.end());
  result.p50 = percentile(latencies, 0.50);
  result.p95 = percentile(latencies, 0.95);
  result.p99 = percentile(latencies, 0.99);
  const serve::ServeStats& s = result.stats;
  result.completion_rate =
      s.accepted > 0
          ? static_cast<double>(result.successes) / static_cast<double>(s.accepted)
          : 0.0;

  Table table({"Metric", "Value"});
  table.add_row({"elapsed s", Table::fmt(result.elapsed_s)});
  table.add_row({"submitted", std::to_string(s.submitted)});
  table.add_row({"accepted", std::to_string(s.accepted)});
  table.add_row({"rejected", std::to_string(s.rejected)});
  table.add_row({"ok", std::to_string(s.completed_ok)});
  table.add_row({"degraded", std::to_string(s.completed_degraded)});
  table.add_row({"errors", std::to_string(s.errors)});
  table.add_row({"timeouts", std::to_string(s.timeouts)});
  table.add_row({"shed (deadline)", std::to_string(s.shed_deadline)});
  table.add_row({"unavailable", std::to_string(s.unavailable)});
  table.add_row({"retries", std::to_string(s.retries)});
  table.add_row({"faults fired", std::to_string(result.faults_fired)});
  table.add_row({"batches", std::to_string(s.batches)});
  table.add_row({"queue peak depth", std::to_string(result.queue_peak)});
  table.add_row({"breaker trips", std::to_string(result.trips)});
  table.add_row({"breaker recoveries", std::to_string(result.recoveries)});
  table.add_row({"completion rate", Table::fmt(result.completion_rate, 4)});
  table.add_row({"soak accuracy %",
                 Table::fmt(result.successes > 0
                                ? 100.0 * static_cast<double>(result.correct) /
                                      static_cast<double>(result.successes)
                                : 0.0)});
  table.add_row({"latency p50 ms", Table::fmt(result.p50)});
  table.add_row({"latency p95 ms", Table::fmt(result.p95)});
  table.add_row({"latency p99 ms", Table::fmt(result.p99)});
  if (opt.http_port >= 0) {
    table.add_row({"endpoint port", std::to_string(result.http_port)});
    table.add_row({"healthz status", std::to_string(result.healthz_status)});
    table.add_row({"metrics conserved",
                   result.conservation_ok ? "yes" : "NO"});
  }
  table.print("Serving soak");
  bench::write_csv(table, "serve_soak.csv");

  // Hard gates — the CI serve-soak job keys off this exit status.
  result.passed = true;
  if (s.accepted + s.rejected != s.submitted) {
    std::printf("FAIL: admission ledger imbalance (accepted %lld + rejected "
                "%lld != submitted %lld)\n",
                static_cast<long long>(s.accepted),
                static_cast<long long>(s.rejected),
                static_cast<long long>(s.submitted));
    result.passed = false;
  }
  if (result.queue_peak > config.queue_capacity) {
    std::printf("FAIL: queue peak depth %lld exceeded capacity %lld\n",
                static_cast<long long>(result.queue_peak),
                static_cast<long long>(config.queue_capacity));
    result.passed = false;
  }
  if (result.completion_rate < 0.99) {
    std::printf("FAIL: completion rate %.4f < 0.99\n", result.completion_rate);
    result.passed = false;
  }
  if (opt.http_port >= 0) {
    if (result.healthz_status != 200 && result.healthz_status != 503) {
      std::printf("FAIL: mid-soak /healthz probe got status %d "
                  "(expected 200 or 503)\n",
                  result.healthz_status);
      result.passed = false;
    }
    if (result.conservation_checked && !result.conservation_ok) {
      std::printf("FAIL: quiescent /metrics scrape disagrees with the "
                  "engine ledger\n");
      result.passed = false;
    }
  }
  if (result.passed) {
    std::printf("soak PASS: %.2f%% of accepted requests completed non-error\n",
                100.0 * result.completion_rate);
  }
  return result;
}

struct AccuracyRow {
  std::int64_t t = 0;
  double ladder_acc = 0.0;       // T=3-converted net run at this T
  double reconverted_acc = 0.0;  // net converted specifically for this T
};

std::vector<AccuracyRow> run_accuracy(const bench::BenchData& data,
                                      const bench::BenchSetup& setup,
                                      dnn::Sequential& model,
                                      const core::ActivationProfile& profile) {
  std::printf("\n== Accuracy vs T (the degradation ladder's cost) ==\n");
  core::ConversionConfig cc3;
  cc3.time_steps = 3;
  auto ladder_net = core::convert(model, profile, cc3, nullptr);
  std::vector<AccuracyRow> rows;
  Table table({"T", "Ladder accuracy %", "Reconverted accuracy %"});
  for (const std::int64_t t : {3LL, 2LL, 1LL}) {
    AccuracyRow row;
    row.t = t;
    // What the breaker does at runtime: same weights/thresholds (converted
    // for T=3), just fewer steps.
    ladder_net->set_time_steps(t);
    ladder_net->reset_state();
    row.ladder_acc = snn::evaluate_snn(*ladder_net, data.test, setup.batch_size);
    // The fair baseline: a conversion tuned for this T.
    core::ConversionConfig cc;
    cc.time_steps = t;
    auto tuned = core::convert(model, profile, cc, nullptr);
    row.reconverted_acc = snn::evaluate_snn(*tuned, data.test, setup.batch_size);
    table.add_row({std::to_string(t), Table::fmt(100.0 * row.ladder_acc),
                   Table::fmt(100.0 * row.reconverted_acc)});
    std::printf("[serve] T=%lld ladder %.2f%%  reconverted %.2f%%\n",
                static_cast<long long>(t), 100.0 * row.ladder_acc,
                100.0 * row.reconverted_acc);
    rows.push_back(row);
  }
  table.print("Accuracy vs T");
  bench::write_csv(table, "serve_accuracy.csv");
  return rows;
}

struct OverheadResult {
  double p50_off = 0.0, p50_on = 0.0;
  double p99_off = 0.0, p99_on = 0.0;
  double p99_ratio = 0.0;
  std::int64_t scrapes = 0;
  double seconds_per_leg = 0.0;
  bool passed = false;
};

/// The observability cost gate: identical clean load (no injected faults)
/// with the live endpoint off vs on — the "on" legs add a 20 Hz background
/// /metrics scraper, far beyond any real Prometheus interval (>= 1 s), so
/// they are a worst case. The stage-timing record and serve.* instruments
/// are always on in both modes (engine contract); what this gate prices is
/// the endpoint + scrape path itself.
///
/// Measurement discipline (what keeps the gate honest instead of flaky):
/// the driver submits one micro-batch-sized wave, drains it, then sleeps as
/// long as the wave took (50% duty cycle). That leaves deliberate idle
/// headroom on every machine — including single-core CI runners — so a p99
/// delta reflects the scrape path interrupting real work, not two saturated
/// threads trading a starved core. Legs run interleaved (off, on, on, off)
/// with the first waves discarded as warmup, and each mode scores its best
/// leg, cancelling machine-load drift across the run.
OverheadResult run_overhead(const Options& opt, const bench::BenchData& data,
                            const serve::NetworkFactory& factory) {
  const double leg_seconds = std::max(opt.seconds / 2.0, 2.0);
  std::printf("\n== Observability overhead: endpoint on vs off, "
              "4 legs x %.1fs ==\n",
              leg_seconds);
  const Tensor& images = data.test.images;
  const std::int64_t samples = data.test.size();
  const std::int64_t sample_numel = images.numel() / samples;
  const Shape input_shape(images.shape().begin() + 1, images.shape().end());

  struct Leg {
    double p50 = 0.0;
    double p99 = 0.0;
    std::int64_t scrapes = 0;
  };
  const auto measure = [&](bool endpoint) {
    serve::ServeConfig config;
    config.workers = opt.workers;
    config.queue_capacity = 128;
    config.batcher.max_batch = 8;
    config.default_deadline = std::chrono::milliseconds(5000);
    config.request_timeout = std::chrono::milliseconds(20000);
    config.max_attempts = 1;  // clean measurement load, no retries
    config.input_shape = input_shape;
    config.obs.endpoint = endpoint;
    serve::ServeEngine engine(config, factory);
    engine.start();

    std::atomic<bool> stop_scraper{false};
    std::atomic<std::int64_t> scrape_count{0};
    std::thread scraper;
    if (endpoint) {
      const int port = engine.http_port();
      scraper = std::thread([&stop_scraper, &scrape_count, port] {
        while (!stop_scraper.load(std::memory_order_acquire)) {
          if (http_get(port, "/metrics").ok) {
            scrape_count.fetch_add(1, std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      });
    }

    std::vector<double> latencies;
    Timer wall;
    std::int64_t cursor = 0;
    std::int64_t wave_index = 0;
    constexpr std::int64_t kWave = 8;      // one micro-batch per wave
    constexpr std::int64_t kWarmupWaves = 2;
    while (wall.seconds() < leg_seconds) {
      Timer wave_timer;
      std::vector<serve::ResponseFuture> futures;
      futures.reserve(kWave);
      for (std::int64_t k = 0; k < kWave; ++k) {
        const std::int64_t sample = cursor++ % samples;
        Tensor image(input_shape);
        std::memcpy(image.data(), images.data() + sample * sample_numel,
                    static_cast<std::size_t>(sample_numel) * sizeof(float));
        serve::SubmitResult submitted = engine.submit(std::move(image));
        if (submitted.accepted) futures.push_back(std::move(submitted.future));
      }
      for (const serve::ResponseFuture& future : futures) {
        const serve::InferResponse response = future.get();
        if (serve::is_success(response.status) &&
            wave_index >= kWarmupWaves) {
          latencies.push_back(response.total_ms);
        }
      }
      ++wave_index;
      // 50% duty cycle: idle as long as the wave was busy.
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(wave_timer.seconds(), 1.0)));
    }
    if (scraper.joinable()) {
      stop_scraper.store(true, std::memory_order_release);
      scraper.join();
    }
    engine.stop();
    Leg leg;
    leg.scrapes = scrape_count.load();
    std::sort(latencies.begin(), latencies.end());
    leg.p50 = percentile(latencies, 0.50);
    leg.p99 = percentile(latencies, 0.99);
    return leg;
  };

  OverheadResult result;
  result.seconds_per_leg = leg_seconds;
  Leg best_off, best_on;
  bool first_off = true, first_on = true;
  for (const bool endpoint : {false, true, true, false}) {
    const Leg leg = measure(endpoint);
    result.scrapes += leg.scrapes;
    Leg& best = endpoint ? best_on : best_off;
    bool& first = endpoint ? first_on : first_off;
    if (first || leg.p99 < best.p99) {
      best = leg;
      first = false;
    }
    std::printf("[serve] overhead leg: endpoint %s, p50 %.3f ms, "
                "p99 %.3f ms\n",
                endpoint ? "on" : "off", leg.p50, leg.p99);
  }
  result.p50_off = best_off.p50;
  result.p50_on = best_on.p50;
  result.p99_off = best_off.p99;
  result.p99_on = best_on.p99;
  result.p99_ratio =
      result.p99_off > 0.0 ? result.p99_on / result.p99_off : 0.0;
  // Gate: < 5% at the tail. The 0.5 ms absolute floor absorbs scheduler
  // noise when per-request latency is small enough that 5% is sub-jitter.
  result.passed = result.p99_on <= result.p99_off * 1.05 + 0.5;

  Table table({"Metric", "Endpoint off", "Endpoint on"});
  table.add_row({"latency p50 ms", Table::fmt(result.p50_off),
                 Table::fmt(result.p50_on)});
  table.add_row({"latency p99 ms", Table::fmt(result.p99_off),
                 Table::fmt(result.p99_on)});
  table.add_row({"/metrics scrapes", "0", std::to_string(result.scrapes)});
  table.print("Observability overhead");
  bench::write_csv(table, "serve_overhead.csv");
  if (result.passed) {
    std::printf("overhead PASS: p99 %.3f -> %.3f ms (x%.3f) with the live "
                "endpoint + 20 Hz scraper\n",
                result.p99_off, result.p99_on, result.p99_ratio);
  } else {
    std::printf("FAIL: observability overhead p99 %.3f -> %.3f ms (x%.3f) "
                "exceeds the 5%% gate\n",
                result.p99_off, result.p99_on, result.p99_ratio);
  }
  return result;
}

void write_json(const std::string& path, const Options& opt,
                const bench::Scale scale, const SoakResult* soak,
                const std::vector<AccuracyRow>& accuracy,
                const OverheadResult* overhead) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot write " + path);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"scale\": \"%s\"",
               bench::scale_name(scale));
  if (soak != nullptr) {
    const serve::ServeStats& s = soak->stats;
    std::fprintf(
        f,
        ",\n  \"soak\": {\n"
        "    \"loop\": \"closed\",\n"
        "    \"seconds\": %.3f,\n    \"fault_rate\": %.4f,\n"
        "    \"workers\": %lld,\n    \"submitted\": %lld,\n"
        "    \"accepted\": %lld,\n    \"rejected\": %lld,\n"
        "    \"ok\": %lld,\n    \"degraded\": %lld,\n    \"errors\": %lld,\n"
        "    \"timeouts\": %lld,\n    \"shed_deadline\": %lld,\n"
        "    \"unavailable\": %lld,\n    \"retries\": %lld,\n"
        "    \"faults_fired\": %lld,\n    \"batches\": %lld,\n"
        "    \"queue_peak_depth\": %lld,\n    \"breaker_trips\": %lld,\n"
        "    \"breaker_recoveries\": %lld,\n"
        "    \"completion_rate\": %.6f,\n"
        "    \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n"
        "    \"http_port\": %d,\n    \"healthz_status\": %d,\n"
        "    \"metrics_conserved\": %s,\n"
        "    \"passed\": %s\n  }",
        soak->elapsed_s, opt.fault_rate, static_cast<long long>(opt.workers),
        static_cast<long long>(s.submitted), static_cast<long long>(s.accepted),
        static_cast<long long>(s.rejected),
        static_cast<long long>(s.completed_ok),
        static_cast<long long>(s.completed_degraded),
        static_cast<long long>(s.errors), static_cast<long long>(s.timeouts),
        static_cast<long long>(s.shed_deadline),
        static_cast<long long>(s.unavailable),
        static_cast<long long>(s.retries),
        static_cast<long long>(soak->faults_fired),
        static_cast<long long>(s.batches),
        static_cast<long long>(soak->queue_peak),
        static_cast<long long>(soak->trips),
        static_cast<long long>(soak->recoveries), soak->completion_rate,
        soak->p50, soak->p95, soak->p99, soak->http_port,
        soak->healthz_status,
        soak->conservation_checked
            ? (soak->conservation_ok ? "true" : "false")
            : "null",
        soak->passed ? "true" : "false");
  }
  if (overhead != nullptr) {
    std::fprintf(
        f,
        ",\n  \"overhead\": {\n"
        "    \"seconds_per_leg\": %.3f,\n    \"scrapes\": %lld,\n"
        "    \"p50_ms\": {\"off\": %.3f, \"on\": %.3f},\n"
        "    \"p99_ms\": {\"off\": %.3f, \"on\": %.3f},\n"
        "    \"p99_ratio\": %.4f,\n    \"passed\": %s\n  }",
        overhead->seconds_per_leg, static_cast<long long>(overhead->scrapes),
        overhead->p50_off, overhead->p50_on, overhead->p99_off,
        overhead->p99_on, overhead->p99_ratio,
        overhead->passed ? "true" : "false");
  }
  if (!accuracy.empty()) {
    std::fprintf(f, ",\n  \"accuracy_vs_t\": [");
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"T\": %lld, \"ladder_acc\": %.4f, "
                   "\"reconverted_acc\": %.4f}",
                   i == 0 ? "" : ",", static_cast<long long>(accuracy[i].t),
                   accuracy[i].ladder_acc, accuracy[i].reconverted_acc);
    }
    std::fprintf(f, "\n  ]");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    const bench::Scale scale = bench::read_scale();
    const bench::BenchSetup setup = bench::setup_for(scale);
    std::printf("== Serving bench (scale: %s) ==\n", bench::scale_name(scale));

    const core::Architecture arch = core::Architecture::kVgg11;
    const bench::BenchData data = bench::make_data(10, setup);
    double dnn_acc = 0.0;
    auto model = bench::trained_dnn(arch, 10, setup, data, &dnn_acc);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);
    std::printf("[serve] DNN accuracy: %.2f%%\n", 100.0 * dnn_acc);

    // Each worker replica is a fresh conversion from the shared trained
    // DNN: same weights, private runtime state.
    core::ConversionConfig cc;
    cc.time_steps = 3;
    const serve::NetworkFactory factory = [&model, &profile, cc] {
      return core::convert(*model, profile, cc, nullptr);
    };

    SoakResult soak;
    bool have_soak = false;
    std::vector<AccuracyRow> accuracy;
    OverheadResult overhead;
    bool have_overhead = false;
    if (opt.soak) {
      soak = run_soak(opt, data, factory);
      have_soak = true;
    }
    if (opt.accuracy) {
      accuracy = run_accuracy(data, setup, *model, profile);
    }
    if (opt.overhead) {
      overhead = run_overhead(opt, data, factory);
      have_overhead = true;
    }
    if (!opt.json_path.empty()) {
      write_json(opt.json_path, opt, scale, have_soak ? &soak : nullptr,
                 accuracy, have_overhead ? &overhead : nullptr);
    }
    const bool failed = (have_soak && !soak.passed) ||
                        (have_overhead && !overhead.passed);
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
