// Serving chaos/soak bench: the resilient inference engine under load and
// injected faults, plus the accuracy-vs-T curve behind the degradation
// ladder.
//
// Modes (combinable; with no flags both run at a short default):
//
//   --soak       drive the ServeEngine with the synthetic test set for
//                --seconds wall-clock, injecting a transient fault into
//                --faults of all requests (deterministic id-keyed schedule).
//                Reports throughput, latency percentiles, retry/breaker
//                counters, and FAILS (exit 1) if fewer than 99% of accepted
//                in-deadline requests complete non-error or if the
//                admission ledger does not balance.
//   --accuracy   measure the ladder's accuracy cost: one SNN converted at
//                T=3 evaluated at T=3/2/1 (what the breaker actually does),
//                next to a fresh conversion at each T (the fair baseline).
//
// Options: --seconds N, --faults R, --workers N, --json PATH.
//
// The JSON snapshot (tools/bench_to_json.sh serve) is the checked-in
// bench/BENCH_serve.json serving baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/serve/engine.h"
#include "src/util/timer.h"

using namespace ullsnn;

namespace {

struct Options {
  bool soak = false;
  bool accuracy = false;
  double seconds = 5.0;
  double fault_rate = 0.05;
  std::int64_t workers = 2;
  std::string json_path;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--soak") {
      opt.soak = true;
    } else if (arg == "--accuracy") {
      opt.accuracy = true;
    } else if (arg == "--seconds") {
      opt.seconds = std::stod(next());
    } else if (arg == "--faults") {
      opt.fault_rate = std::stod(next());
    } else if (arg == "--workers") {
      opt.workers = std::stoll(next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  if (!opt.soak && !opt.accuracy) {
    opt.soak = true;
    opt.accuracy = true;
  }
  if (opt.fault_rate < 0.0 || opt.fault_rate > 1.0) {
    throw std::invalid_argument("--faults must be in [0, 1]");
  }
  return opt;
}

/// Deterministic per-request fault schedule: whether request `id` suffers a
/// transient fault on its first forward attempt. Keyed by a hash of the id,
/// not submission timing, so the faulted set is identical across runs and
/// thread interleavings.
bool fault_scheduled(std::int64_t id, double rate) {
  const auto h = static_cast<std::uint64_t>(id) * 1315423911ULL;
  return static_cast<double>(h % 10000ULL) < rate * 10000.0;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct SoakResult {
  serve::ServeStats stats;
  std::int64_t queue_peak = 0;
  std::int64_t trips = 0;
  std::int64_t recoveries = 0;
  std::int64_t correct = 0;
  std::int64_t successes = 0;
  std::int64_t faults_fired = 0;
  double elapsed_s = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double completion_rate = 0.0;
  bool passed = false;
};

SoakResult run_soak(const Options& opt, const bench::BenchData& data,
                    const serve::NetworkFactory& factory) {
  std::printf("\n== Soak: %.0fs, fault rate %.1f%%, %lld worker(s) ==\n",
              opt.seconds, 100.0 * opt.fault_rate,
              static_cast<long long>(opt.workers));
  serve::ServeConfig config;
  config.workers = opt.workers;
  config.queue_capacity = 128;
  config.batcher.max_batch = 8;
  config.default_deadline = std::chrono::milliseconds(5000);
  config.request_timeout = std::chrono::milliseconds(20000);
  config.max_attempts = 3;
  config.retry_backoff = std::chrono::microseconds(50);
  const Tensor& images = data.test.images;
  const std::int64_t samples = data.test.size();
  const std::int64_t sample_numel = images.numel() / samples;
  config.input_shape = Shape(images.shape().begin() + 1, images.shape().end());

  std::atomic<std::int64_t> faults_fired{0};
  const double rate = opt.fault_rate;
  config.before_forward_hook = [rate, &faults_fired](
                                   const std::vector<std::int64_t>& ids,
                                   std::int64_t attempt, snn::SnnNetwork&) {
    if (attempt > 0) return;  // transient: retries run clean
    for (const std::int64_t id : ids) {
      if (fault_scheduled(id, rate)) {
        faults_fired.fetch_add(1);
        throw std::runtime_error("soak: injected transient fault");
      }
    }
  };

  serve::ServeEngine engine(config, factory);
  engine.start();

  SoakResult result;
  std::vector<double> latencies;
  Timer wall;
  std::int64_t cursor = 0;
  constexpr std::int64_t kWave = 32;
  while (wall.seconds() < opt.seconds) {
    std::vector<serve::ResponseFuture> futures;
    std::vector<std::int64_t> labels;
    futures.reserve(kWave);
    labels.reserve(kWave);
    for (std::int64_t k = 0; k < kWave; ++k) {
      const std::int64_t sample = cursor++ % samples;
      Tensor image(config.input_shape);
      std::memcpy(image.data(), images.data() + sample * sample_numel,
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
      serve::SubmitResult submitted = engine.submit(std::move(image));
      if (!submitted.accepted) continue;  // counted by the engine ledger
      futures.push_back(std::move(submitted.future));
      labels.push_back(data.test.labels[static_cast<std::size_t>(sample)]);
    }
    for (std::size_t k = 0; k < futures.size(); ++k) {
      const serve::InferResponse response = futures[k].get();
      if (serve::is_success(response.status)) {
        ++result.successes;
        latencies.push_back(response.total_ms);
        if (response.predicted == labels[k]) ++result.correct;
      }
    }
  }
  result.elapsed_s = wall.seconds();
  engine.stop();

  result.stats = engine.stats();
  result.queue_peak = engine.queue_peak_depth();
  result.trips = engine.breaker().trips();
  result.recoveries = engine.breaker().recoveries();
  result.faults_fired = faults_fired.load();
  std::sort(latencies.begin(), latencies.end());
  result.p50 = percentile(latencies, 0.50);
  result.p95 = percentile(latencies, 0.95);
  result.p99 = percentile(latencies, 0.99);
  const serve::ServeStats& s = result.stats;
  result.completion_rate =
      s.accepted > 0
          ? static_cast<double>(result.successes) / static_cast<double>(s.accepted)
          : 0.0;

  Table table({"Metric", "Value"});
  table.add_row({"elapsed s", Table::fmt(result.elapsed_s)});
  table.add_row({"submitted", std::to_string(s.submitted)});
  table.add_row({"accepted", std::to_string(s.accepted)});
  table.add_row({"rejected", std::to_string(s.rejected)});
  table.add_row({"ok", std::to_string(s.completed_ok)});
  table.add_row({"degraded", std::to_string(s.completed_degraded)});
  table.add_row({"errors", std::to_string(s.errors)});
  table.add_row({"timeouts", std::to_string(s.timeouts)});
  table.add_row({"shed (deadline)", std::to_string(s.shed_deadline)});
  table.add_row({"unavailable", std::to_string(s.unavailable)});
  table.add_row({"retries", std::to_string(s.retries)});
  table.add_row({"faults fired", std::to_string(result.faults_fired)});
  table.add_row({"batches", std::to_string(s.batches)});
  table.add_row({"queue peak depth", std::to_string(result.queue_peak)});
  table.add_row({"breaker trips", std::to_string(result.trips)});
  table.add_row({"breaker recoveries", std::to_string(result.recoveries)});
  table.add_row({"completion rate", Table::fmt(result.completion_rate, 4)});
  table.add_row({"soak accuracy %",
                 Table::fmt(result.successes > 0
                                ? 100.0 * static_cast<double>(result.correct) /
                                      static_cast<double>(result.successes)
                                : 0.0)});
  table.add_row({"latency p50 ms", Table::fmt(result.p50)});
  table.add_row({"latency p95 ms", Table::fmt(result.p95)});
  table.add_row({"latency p99 ms", Table::fmt(result.p99)});
  table.print("Serving soak");
  bench::write_csv(table, "serve_soak.csv");

  // Hard gates — the CI serve-soak job keys off this exit status.
  result.passed = true;
  if (s.accepted + s.rejected != s.submitted) {
    std::printf("FAIL: admission ledger imbalance (accepted %lld + rejected "
                "%lld != submitted %lld)\n",
                static_cast<long long>(s.accepted),
                static_cast<long long>(s.rejected),
                static_cast<long long>(s.submitted));
    result.passed = false;
  }
  if (result.queue_peak > config.queue_capacity) {
    std::printf("FAIL: queue peak depth %lld exceeded capacity %lld\n",
                static_cast<long long>(result.queue_peak),
                static_cast<long long>(config.queue_capacity));
    result.passed = false;
  }
  if (result.completion_rate < 0.99) {
    std::printf("FAIL: completion rate %.4f < 0.99\n", result.completion_rate);
    result.passed = false;
  }
  if (result.passed) {
    std::printf("soak PASS: %.2f%% of accepted requests completed non-error\n",
                100.0 * result.completion_rate);
  }
  return result;
}

struct AccuracyRow {
  std::int64_t t = 0;
  double ladder_acc = 0.0;       // T=3-converted net run at this T
  double reconverted_acc = 0.0;  // net converted specifically for this T
};

std::vector<AccuracyRow> run_accuracy(const bench::BenchData& data,
                                      const bench::BenchSetup& setup,
                                      dnn::Sequential& model,
                                      const core::ActivationProfile& profile) {
  std::printf("\n== Accuracy vs T (the degradation ladder's cost) ==\n");
  core::ConversionConfig cc3;
  cc3.time_steps = 3;
  auto ladder_net = core::convert(model, profile, cc3, nullptr);
  std::vector<AccuracyRow> rows;
  Table table({"T", "Ladder accuracy %", "Reconverted accuracy %"});
  for (const std::int64_t t : {3LL, 2LL, 1LL}) {
    AccuracyRow row;
    row.t = t;
    // What the breaker does at runtime: same weights/thresholds (converted
    // for T=3), just fewer steps.
    ladder_net->set_time_steps(t);
    ladder_net->reset_state();
    row.ladder_acc = snn::evaluate_snn(*ladder_net, data.test, setup.batch_size);
    // The fair baseline: a conversion tuned for this T.
    core::ConversionConfig cc;
    cc.time_steps = t;
    auto tuned = core::convert(model, profile, cc, nullptr);
    row.reconverted_acc = snn::evaluate_snn(*tuned, data.test, setup.batch_size);
    table.add_row({std::to_string(t), Table::fmt(100.0 * row.ladder_acc),
                   Table::fmt(100.0 * row.reconverted_acc)});
    std::printf("[serve] T=%lld ladder %.2f%%  reconverted %.2f%%\n",
                static_cast<long long>(t), 100.0 * row.ladder_acc,
                100.0 * row.reconverted_acc);
    rows.push_back(row);
  }
  table.print("Accuracy vs T");
  bench::write_csv(table, "serve_accuracy.csv");
  return rows;
}

void write_json(const std::string& path, const Options& opt,
                const bench::Scale scale, const SoakResult* soak,
                const std::vector<AccuracyRow>& accuracy) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot write " + path);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"scale\": \"%s\"",
               bench::scale_name(scale));
  if (soak != nullptr) {
    const serve::ServeStats& s = soak->stats;
    std::fprintf(
        f,
        ",\n  \"soak\": {\n"
        "    \"seconds\": %.3f,\n    \"fault_rate\": %.4f,\n"
        "    \"workers\": %lld,\n    \"submitted\": %lld,\n"
        "    \"accepted\": %lld,\n    \"rejected\": %lld,\n"
        "    \"ok\": %lld,\n    \"degraded\": %lld,\n    \"errors\": %lld,\n"
        "    \"timeouts\": %lld,\n    \"shed_deadline\": %lld,\n"
        "    \"unavailable\": %lld,\n    \"retries\": %lld,\n"
        "    \"faults_fired\": %lld,\n    \"batches\": %lld,\n"
        "    \"queue_peak_depth\": %lld,\n    \"breaker_trips\": %lld,\n"
        "    \"breaker_recoveries\": %lld,\n"
        "    \"completion_rate\": %.6f,\n"
        "    \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n"
        "    \"passed\": %s\n  }",
        soak->elapsed_s, opt.fault_rate, static_cast<long long>(opt.workers),
        static_cast<long long>(s.submitted), static_cast<long long>(s.accepted),
        static_cast<long long>(s.rejected),
        static_cast<long long>(s.completed_ok),
        static_cast<long long>(s.completed_degraded),
        static_cast<long long>(s.errors), static_cast<long long>(s.timeouts),
        static_cast<long long>(s.shed_deadline),
        static_cast<long long>(s.unavailable),
        static_cast<long long>(s.retries),
        static_cast<long long>(soak->faults_fired),
        static_cast<long long>(s.batches),
        static_cast<long long>(soak->queue_peak),
        static_cast<long long>(soak->trips),
        static_cast<long long>(soak->recoveries), soak->completion_rate,
        soak->p50, soak->p95, soak->p99, soak->passed ? "true" : "false");
  }
  if (!accuracy.empty()) {
    std::fprintf(f, ",\n  \"accuracy_vs_t\": [");
    for (std::size_t i = 0; i < accuracy.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"T\": %lld, \"ladder_acc\": %.4f, "
                   "\"reconverted_acc\": %.4f}",
                   i == 0 ? "" : ",", static_cast<long long>(accuracy[i].t),
                   accuracy[i].ladder_acc, accuracy[i].reconverted_acc);
    }
    std::fprintf(f, "\n  ]");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    const bench::Scale scale = bench::read_scale();
    const bench::BenchSetup setup = bench::setup_for(scale);
    std::printf("== Serving bench (scale: %s) ==\n", bench::scale_name(scale));

    const core::Architecture arch = core::Architecture::kVgg11;
    const bench::BenchData data = bench::make_data(10, setup);
    double dnn_acc = 0.0;
    auto model = bench::trained_dnn(arch, 10, setup, data, &dnn_acc);
    const core::ActivationProfile profile =
        core::collect_activations(*model, data.train);
    std::printf("[serve] DNN accuracy: %.2f%%\n", 100.0 * dnn_acc);

    SoakResult soak;
    bool have_soak = false;
    std::vector<AccuracyRow> accuracy;
    if (opt.soak) {
      // Each worker replica is a fresh conversion from the shared trained
      // DNN: same weights, private runtime state.
      core::ConversionConfig cc;
      cc.time_steps = 3;
      serve::NetworkFactory factory = [&model, &profile, cc] {
        return core::convert(*model, profile, cc, nullptr);
      };
      soak = run_soak(opt, data, factory);
      have_soak = true;
    }
    if (opt.accuracy) {
      accuracy = run_accuracy(data, setup, *model, profile);
    }
    if (!opt.json_path.empty()) {
      write_json(opt.json_path, opt, scale, have_soak ? &soak : nullptr,
                 accuracy);
    }
    return have_soak && !soak.passed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
